package experiments

import (
	"context"
	"fmt"

	"biasmit/internal/bitstring"
	"biasmit/internal/core"
	"biasmit/internal/device"
	"biasmit/internal/dist"
	"biasmit/internal/kernels"
	"biasmit/internal/maxcut"
	"biasmit/internal/metrics"
	"biasmit/internal/orchestrate"
	"biasmit/internal/report"
)

// Figure3Result reproduces Fig 3(b-d): the output distribution of a
// 2-bit Bernstein-Vazirani kernel on an ideal machine and on a NISQ
// machine for two keys — one where the answer is still inferable, one
// where bias masks it.
type Figure3Result struct {
	Machine    string
	Ideal      dist.Dist // key 01, ideal machine
	GoodKey    dist.Dist // key 01 on the NISQ model (inferable)
	BadKey     dist.Dist // key 11 on the NISQ model (maskable)
	GoodKeyIST float64
	BadKeyIST  float64
	GoodTarget bitstring.Bits
	BadTarget  bitstring.Bits
}

// Figure3 runs BV-2 with keys 01 and 11 on the ibmqx4 model. The paper
// plots 2-bit outputs; we marginalize out the ancilla accordingly.
func Figure3(ctx context.Context, cfg Config) (Figure3Result, error) {
	dev := device.IBMQX4()
	m := cfg.machine(dev)
	shots := cfg.shots(8192)

	run := func(ctx context.Context, key string, seed int64) (dist.Dist, bitstring.Bits, error) {
		b := kernels.BV("bv-2", bitstring.MustParse(key))
		job, err := core.NewJob(b.Circuit, m)
		if err != nil {
			return dist.Dist{}, bitstring.Bits{}, err
		}
		counts, err := job.BaselineContext(ctx, shots, seed)
		if err != nil {
			return dist.Dist{}, bitstring.Bits{}, err
		}
		return marginalizeLow(counts.Dist(), 2), bitstring.MustParse(key), nil
	}

	good, goodTarget, err := run(ctx, "01", cfg.Seed+51)
	if err != nil {
		return Figure3Result{}, err
	}
	bad, badTarget, err := run(ctx, "11", cfg.Seed+52)
	if err != nil {
		return Figure3Result{}, err
	}
	ideal := dist.Dist{Width: 2, P: map[bitstring.Bits]float64{goodTarget: 1}}
	return Figure3Result{
		Machine:    dev.Name,
		Ideal:      ideal,
		GoodKey:    good,
		BadKey:     bad,
		GoodKeyIST: metrics.IST(good, goodTarget),
		BadKeyIST:  metrics.IST(bad, badTarget),
		GoodTarget: goodTarget,
		BadTarget:  badTarget,
	}, nil
}

// marginalizeLow keeps the low `keep` bits of a distribution.
func marginalizeLow(d dist.Dist, keep int) dist.Dist {
	out := dist.NewDist(keep)
	for b, p := range d.P {
		out.P[b.Slice(0, keep)] += p
	}
	return out
}

// Render shows the three distributions of Fig 3.
func (r Figure3Result) Render() string {
	draw := func(title string, d dist.Dist) string {
		labels := []string{"00", "01", "10", "11"}
		vals := make([]float64, 4)
		for i, l := range labels {
			vals[i] = d.Prob(bitstring.MustParse(l))
		}
		return title + "\n" + report.Bars(labels, vals, 40)
	}
	return draw("ideal machine, key 01:", r.Ideal) +
		draw(fmt.Sprintf("NISQ, key 01 (IST %.2f — inferable):", r.GoodKeyIST), r.GoodKey) +
		draw(fmt.Sprintf("NISQ, key 11 (IST %.2f — masked when < 1):", r.BadKeyIST), r.BadKey)
}

// Figure6Result reproduces Fig 6: GHZ-5 on melbourne. The paper measures
// P(00000) ≈ 0.4 and P(11111) ≈ 0.1 against the ideal 0.5/0.5.
type Figure6Result struct {
	Machine  string
	States   []bitstring.Bits // ascending Hamming weight
	Measured []float64
	PZeros   float64
	POnes    float64
	Skew     float64 // P(00000)/P(11111); paper ≈ 4
}

// Figure6 prepares and measures GHZ-5 on the melbourne model.
func Figure6(ctx context.Context, cfg Config) (Figure6Result, error) {
	dev := device.IBMQMelbourne()
	m := cfg.machine(dev)
	job, err := core.NewJob(kernels.GHZ(5), m)
	if err != nil {
		return Figure6Result{}, err
	}
	counts, err := job.BaselineContext(ctx, cfg.shots(32000), cfg.Seed+61)
	if err != nil {
		return Figure6Result{}, err
	}
	d := counts.Dist()
	res := Figure6Result{
		Machine: dev.Name,
		States:  bitstring.AllByHammingWeight(5),
		PZeros:  d.Prob(bitstring.Zeros(5)),
		POnes:   d.Prob(bitstring.Ones(5)),
	}
	if res.POnes > 0 {
		res.Skew = res.PZeros / res.POnes
	}
	for _, b := range res.States {
		res.Measured = append(res.Measured, d.Prob(b))
	}
	return res, nil
}

// Render draws the measured GHZ distribution in Hamming-weight order.
func (r Figure6Result) Render() string {
	labels := make([]string, len(r.States))
	for i, b := range r.States {
		labels[i] = b.String()
	}
	return fmt.Sprintf("GHZ-5 on %s: P(00000)=%.3f P(11111)=%.3f skew %.1fx (ideal 0.5/0.5; paper 0.4/0.1 = 4x)\n%s",
		r.Machine, r.PZeros, r.POnes, r.Skew, report.Bars(labels, r.Measured, 40))
}

// Table2Row is one QAOA input graph's reliability metrics.
type Table2Row struct {
	Graph         string
	Optimal       bitstring.Bits
	HammingWeight int
	PST           float64
	IST           float64
	ROCA          int
}

// Table2Result reproduces Table 2: QAOA max-cut for graphs A-E on
// melbourne under the baseline policy; PST/IST degrade and ROCA grows
// with the Hamming weight of the optimal output.
type Table2Result struct {
	Machine string
	Rows    []Table2Row
}

// Table2 executes the five 6-node graphs for 32k trials each. The
// graphs are independent workloads and run on cfg.Workers goroutines;
// each graph's seed depends only on its index, so the table is
// bit-identical at every worker count.
func Table2(ctx context.Context, cfg Config) (Table2Result, error) {
	dev := device.IBMQMelbourne()
	m := cfg.machine(dev)
	res := Table2Result{Machine: dev.Name}
	shots := cfg.shots(32000)
	rows, err := orchestrate.Map(ctx, cfg.workers(), maxcut.Table2Graphs(),
		func(ctx context.Context, i int, pg maxcut.PaperGraph) (Table2Row, error) {
			bench := kernels.QAOA(pg.Graph.Name, pg, 1)
			job, err := core.NewJob(bench.Circuit, m)
			if err != nil {
				return Table2Row{}, err
			}
			counts, err := job.BaselineContext(ctx, shots, cfg.Seed+71+int64(i))
			if err != nil {
				return Table2Row{}, err
			}
			pm := evaluate(counts.Dist(), bench.Correct)
			return Table2Row{
				Graph:         pg.Graph.Name,
				Optimal:       pg.Optimal,
				HammingWeight: pg.Optimal.HammingWeight(),
				PST:           pm.PST,
				IST:           pm.IST,
				ROCA:          pm.ROCA,
			}, nil
		})
	if err != nil {
		return res, err
	}
	res.Rows = rows
	return res, nil
}

// Render formats Table 2.
func (r Table2Result) Render() string {
	rows := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		rows[i] = []string{
			row.Graph, row.Optimal.String(), fmt.Sprint(row.HammingWeight),
			report.Pct(row.PST), report.F(row.IST), fmt.Sprint(row.ROCA),
		}
	}
	return report.Table([]string{"graph", "optimal", "weight", "PST", "IST", "ROCA"}, rows)
}

// Figure7Result is the worked SIM example of Fig 7: the standard-mode
// and inverted-mode distributions merge so the correct answer regains
// rank 1.
type Figure7Result struct {
	Standard     dist.Dist
	Inverted     dist.Dist // after post-correction
	Merged       dist.Dist
	Correct      bitstring.Bits
	StandardRank int
	MergedRank   int
}

// Figure7 reconstructs the paper's worked example with its published
// numbers, demonstrating the merge mechanics exactly.
func Figure7(Config) Figure7Result {
	bsx := bitstring.MustParse
	standard := dist.Dist{Width: 3, P: map[bitstring.Bits]float64{
		bsx("001"): 0.45, bsx("101"): 0.35, bsx("100"): 0.15, bsx("000"): 0.05,
	}}
	rawInverted := dist.Dist{Width: 3, P: map[bitstring.Bits]float64{
		bsx("010"): 0.75, bsx("000"): 0.15, bsx("011"): 0.05, bsx("110"): 0.05,
	}}
	inverted := rawInverted.XorTransform(bitstring.Ones(3))
	merged := dist.Mix([]dist.Dist{standard, inverted}, []float64{1, 1})
	correct := bsx("101")
	return Figure7Result{
		Standard:     standard,
		Inverted:     inverted,
		Merged:       merged,
		Correct:      correct,
		StandardRank: standard.Rank(correct),
		MergedRank:   merged.Rank(correct),
	}
}

// Render shows the three distributions of the worked example.
func (r Figure7Result) Render() string {
	draw := func(title string, d dist.Dist) string {
		var labels []string
		var vals []float64
		for _, b := range d.TopK(8) {
			labels = append(labels, b.String())
			vals = append(vals, d.Prob(b))
		}
		return title + "\n" + report.Bars(labels, vals, 40)
	}
	return draw("standard mode (A):", r.Standard) +
		draw("inverted mode, corrected (C):", r.Inverted) +
		draw("merged (D):", r.Merged)
}

// Figure9Result reproduces Fig 9: QAOA for graph D on melbourne, baseline
// vs SIM output distributions. The paper reports ROCA improving from 14
// to 6 and low-Hamming-weight false positives being attenuated.
type Figure9Result struct {
	Machine      string
	Correct      bitstring.Bits
	States       []bitstring.Bits // 6-bit states in Hamming-weight order
	Baseline     []float64
	SIM          []float64
	BaselinePST  float64
	SIMPST       float64
	BaselineIST  float64
	SIMIST       float64
	BaselineROCA int
	SIMROCA      int
}

// Figure9 runs QAOA graph-D (output 101011) for 16k trials per policy.
func Figure9(ctx context.Context, cfg Config) (Figure9Result, error) {
	dev := device.IBMQMelbourne()
	m := cfg.machine(dev)
	pg := maxcut.Table2Graphs()[3] // Graph-D
	bench := kernels.QAOA(pg.Graph.Name, pg, 1)
	job, err := core.NewJob(bench.Circuit, m)
	if err != nil {
		return Figure9Result{}, err
	}
	shots := cfg.shots(16000)

	base, err := job.BaselineContext(ctx, shots, cfg.Seed+81)
	if err != nil {
		return Figure9Result{}, err
	}
	sim, err := core.SIM4Context(ctx, job, shots, cfg.Seed+82)
	if err != nil {
		return Figure9Result{}, err
	}
	baseD, simD := base.Dist(), sim.Merged.Dist()
	basePM, simPM := evaluate(baseD, bench.Correct), evaluate(simD, bench.Correct)
	res := Figure9Result{
		Machine:      dev.Name,
		Correct:      pg.Optimal,
		States:       bitstring.AllByHammingWeight(6),
		BaselinePST:  basePM.PST,
		SIMPST:       simPM.PST,
		BaselineIST:  basePM.IST,
		SIMIST:       simPM.IST,
		BaselineROCA: basePM.ROCA,
		SIMROCA:      simPM.ROCA,
	}
	for _, b := range res.States {
		res.Baseline = append(res.Baseline, baseD.Prob(b))
		res.SIM = append(res.SIM, simD.Prob(b))
	}
	return res, nil
}

// Render summarizes the rank improvement; the full series are in the
// result for plotting.
func (r Figure9Result) Render() string {
	return report.Table(
		[]string{"policy", "PST", "IST", "ROCA"},
		[][]string{
			{"baseline", report.Pct(r.BaselinePST), report.F(r.BaselineIST), fmt.Sprint(r.BaselineROCA)},
			{"SIM", report.Pct(r.SIMPST), report.F(r.SIMIST), fmt.Sprint(r.SIMROCA)},
		},
	) + fmt.Sprintf("correct output %v (paper: ROCA 14 -> 6)\n", r.Correct)
}

package experiments

import (
	"context"
	"fmt"

	"biasmit/internal/bitstring"
	"biasmit/internal/core"
	"biasmit/internal/device"
	"biasmit/internal/kernels"
	"biasmit/internal/metrics"
	"biasmit/internal/orchestrate"
	"biasmit/internal/report"
)

// bvSweepLayout pins every BV-4 instance of the ibmqx4 sweeps to one
// physical placement so policies and keys are compared on identical
// qubits, as the paper's methodology requires. The layout comes from the
// variability-aware placement of the all-ones-key instance (the one with
// the most oracle CNOTs).
func bvSweepLayout(m *core.Machine) ([]int, error) {
	ref := kernels.BV("bv-layout-ref", bitstring.MustParse("1111"))
	job, err := core.NewJob(ref.Circuit, m)
	if err != nil {
		return nil, err
	}
	return job.Plan.InitialLayout, nil
}

// Figure11Result reproduces Fig 11 on ibmqx4: (a) the PST of directly
// measuring each 5-bit basis state — arbitrary, not monotone in Hamming
// weight — and (b) the PST of BV-4 for every 5-bit expected output,
// which tracks (a).
type Figure11Result struct {
	Machine          string
	States           []bitstring.Bits // ascending Hamming weight (x-axis)
	BasisPST         []float64        // (a)
	BVPST            []float64        // (b)
	Correlation      float64          // between (a) and (b); positive in the paper
	BasisHammingCorr float64          // weak on ibmqx4 (§6.1)
}

// Figure11 sweeps all 32 basis states (16k trials each) and all 32 BV
// targets (24k trials each, as in the paper). Both 32-point sweeps run
// on cfg.Workers goroutines; every point's seed depends only on its
// state value, so the curves are bit-identical at every worker count.
func Figure11(ctx context.Context, cfg Config) (Figure11Result, error) {
	dev := device.IBMQX4()
	m := cfg.machine(dev)
	res := Figure11Result{Machine: dev.Name, States: bitstring.AllByHammingWeight(5)}

	prepShots := cfg.shots(16000)
	basisByValue, err := orchestrate.Map(ctx, cfg.workers(), bitstring.All(5),
		func(ctx context.Context, _ int, b bitstring.Bits) (float64, error) {
			job, err := core.NewJobWithLayout(kernels.BasisPrep(b), m, identityLayout(5))
			if err != nil {
				return 0, err
			}
			counts, err := job.BaselineContext(ctx, prepShots, cfg.Seed+200+int64(b.Uint64()))
			if err != nil {
				return 0, err
			}
			return float64(counts.Get(b)) / float64(prepShots), nil
		})
	if err != nil {
		return res, err
	}

	layout, err := bvSweepLayout(m)
	if err != nil {
		return res, err
	}
	bvShots := cfg.shots(24000)
	bvByValue, err := orchestrate.Map(ctx, cfg.workers(), bitstring.All(5),
		func(ctx context.Context, _ int, target bitstring.Bits) (float64, error) {
			bench := kernels.BVWithTarget("bv-4", target)
			job, err := core.NewJobWithLayout(bench.Circuit, m, layout)
			if err != nil {
				return 0, err
			}
			counts, err := job.BaselineContext(ctx, bvShots, cfg.Seed+300+int64(target.Uint64()))
			if err != nil {
				return 0, err
			}
			return metrics.PST(counts.Dist(), target), nil
		})
	if err != nil {
		return res, err
	}

	for _, b := range res.States {
		res.BasisPST = append(res.BasisPST, basisByValue[b.Uint64()])
		res.BVPST = append(res.BVPST, bvByValue[b.Uint64()])
	}
	if res.Correlation, err = metrics.Pearson(basisByValue, bvByValue); err != nil {
		return res, err
	}
	if res.BasisHammingCorr, err = metrics.Pearson(metrics.HammingWeightSeries(5), basisByValue); err != nil {
		return res, err
	}
	return res, nil
}

// Render shows both sweeps and their correlation.
func (r Figure11Result) Render() string {
	labels := make([]string, len(r.States))
	for i, b := range r.States {
		labels[i] = b.String()
	}
	return fmt.Sprintf("(a) basis-state PST on %s (Hamming corr %.3f — arbitrary bias):\n%s\n(b) BV-4 PST per expected output (corr with (a): %.3f):\n%s",
		r.Machine, r.BasisHammingCorr, report.Bars(labels, r.BasisPST, 40),
		r.Correlation, report.Bars(labels, r.BVPST, 40))
}

// Figure13Row is one BV target's PST under the three policies.
type Figure13Row struct {
	Target   bitstring.Bits
	Baseline float64
	SIM      float64
	AIM      float64
}

// Figure13Result reproduces Fig 13: BV on ibmqx4 for every 5-bit output
// under baseline, SIM, and AIM. The paper's claims: AIM is consistently
// high and nearly flat across states, except that the baseline wins on
// the trivial all-zeros case.
type Figure13Result struct {
	Machine string
	Rows    []Figure13Row // ascending Hamming weight
	// Spreads quantify flatness (max-min PST across states).
	BaselineSpread float64
	SIMSpread      float64
	AIMSpread      float64
	// Means quantify overall level.
	BaselineMean float64
	SIMMean      float64
	AIMMean      float64
}

// Figure13 runs the 32-target sweep under all three policies (24k trials
// per instance in the paper). The machine RBMS is profiled once with the
// brute-force technique, as the paper does for IBM-Q5.
func Figure13(ctx context.Context, cfg Config) (Figure13Result, error) {
	dev := device.IBMQX4()
	m := cfg.machine(dev)
	res := Figure13Result{Machine: dev.Name}

	layout, err := bvSweepLayout(m)
	if err != nil {
		return res, err
	}
	prof := &core.Profiler{Machine: m, Layout: layout}
	rbms, err := prof.BruteForceContext(ctx, cfg.shots(4096), cfg.Seed+400)
	if err != nil {
		return res, err
	}

	// The 32 targets are independent three-policy evaluations; run them
	// on cfg.Workers goroutines with per-target seeds fixed by sweep
	// position so the sweep is bit-identical at every worker count.
	shots := cfg.shots(24000)
	rows, err := orchestrate.Map(ctx, cfg.workers(), bitstring.AllByHammingWeight(5),
		func(ctx context.Context, i int, target bitstring.Bits) (Figure13Row, error) {
			bench := kernels.BVWithTarget("bv-4", target)
			job, err := core.NewJobWithLayout(bench.Circuit, m, layout)
			if err != nil {
				return Figure13Row{}, err
			}
			seed := cfg.Seed + 500 + int64(i)
			base, err := job.BaselineContext(ctx, shots, seed+1000)
			if err != nil {
				return Figure13Row{}, err
			}
			sim, err := core.SIM4Context(ctx, job, shots, seed+2000)
			if err != nil {
				return Figure13Row{}, err
			}
			aim, err := core.AIMContext(ctx, job, rbms, core.AIMConfig{}, shots, seed+3000)
			if err != nil {
				return Figure13Row{}, err
			}
			return Figure13Row{
				Target:   target,
				Baseline: metrics.PST(base.Dist(), target),
				SIM:      metrics.PST(sim.Merged.Dist(), target),
				AIM:      metrics.PST(aim.Merged.Dist(), target),
			}, nil
		})
	if err != nil {
		return res, err
	}
	res.Rows = rows

	stats := func(get func(Figure13Row) float64) (spread, mean float64) {
		min, max, sum := 1.0, 0.0, 0.0
		for _, row := range res.Rows {
			v := get(row)
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
			sum += v
		}
		return max - min, sum / float64(len(res.Rows))
	}
	res.BaselineSpread, res.BaselineMean = stats(func(r Figure13Row) float64 { return r.Baseline })
	res.SIMSpread, res.SIMMean = stats(func(r Figure13Row) float64 { return r.SIM })
	res.AIMSpread, res.AIMMean = stats(func(r Figure13Row) float64 { return r.AIM })
	return res, nil
}

// Render tabulates the sweep and its flatness statistics.
func (r Figure13Result) Render() string {
	rows := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		rows[i] = []string{
			row.Target.String(), report.F(row.Baseline), report.F(row.SIM), report.F(row.AIM),
		}
	}
	return report.Table([]string{"state", "baseline", "SIM", "AIM"}, rows) +
		fmt.Sprintf("\nmean PST: baseline %.3f, SIM %.3f, AIM %.3f\nspread (max-min): baseline %.3f, SIM %.3f, AIM %.3f (paper: AIM stays high and flat)\n",
			r.BaselineMean, r.SIMMean, r.AIMMean,
			r.BaselineSpread, r.SIMSpread, r.AIMSpread)
}

// Table3Row describes one benchmark of the suite.
type Table3Row struct {
	Name    string
	Problem string
	Output  string
	Qubits  int
	Gates1Q int
	Gates2Q int
	Depth   int
}

// Table3 reproduces the benchmark-characteristics table, extended with
// the generated circuits' structural statistics (gate counts scale
// linearly with problem size, §4.1).
func Table3() []Table3Row {
	descr := map[string][2]string{
		"bv-4A":   {"4-bit Bernstein-Vazirani", "Secret: 0111"},
		"bv-4B":   {"4-bit Bernstein-Vazirani", "Secret: 1111"},
		"bv-6":    {"6-bit Bernstein-Vazirani", "Secret: 011111"},
		"bv-7":    {"7-bit Bernstein-Vazirani", "Secret: 0111111"},
		"qaoa-4A": {"max-cut for 4 node graph", "Output cut: 0101"},
		"qaoa-4B": {"max-cut for 4 node graph (p=2)", "Output cut: 0111"},
		"qaoa-6":  {"max-cut for 6 node graph (p=2)", "Output cut: 101011"},
		"qaoa-7":  {"max-cut for 7 node graph (p=2)", "Output cut: 1010110"},
	}
	var rows []Table3Row
	for _, b := range kernels.Table3Suite() {
		d := descr[b.Name]
		oneQ, twoQ, _ := b.Circuit.GateCounts()
		rows = append(rows, Table3Row{
			Name:    b.Name,
			Problem: d[0],
			Output:  d[1],
			Qubits:  b.Width(),
			Gates1Q: oneQ,
			Gates2Q: twoQ,
			Depth:   b.Circuit.Depth(),
		})
	}
	return rows
}

// RenderTable3 formats the benchmark characteristics.
func RenderTable3(rows []Table3Row) string {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{
			r.Name, r.Problem, r.Output,
			fmt.Sprint(r.Qubits), fmt.Sprint(r.Gates1Q), fmt.Sprint(r.Gates2Q), fmt.Sprint(r.Depth),
		}
	}
	return report.Table([]string{"benchmark", "problem", "output", "qubits", "1q gates", "2q gates", "depth"}, out)
}

package experiments

import (
	"context"
	"fmt"

	"biasmit/internal/bitstring"
	"biasmit/internal/core"
	"biasmit/internal/device"
	"biasmit/internal/kernels"
	"biasmit/internal/metrics"
	"biasmit/internal/report"
	"biasmit/internal/transpile"
)

// AllocationComparisonResult measures the paper's baseline assumption:
// variability-aware qubit allocation ([26, 28]) versus a
// hardware-oblivious identity allocation, on a machine whose qubit
// quality varies widely (melbourne, with a 31% readout-error qubit).
type AllocationComparisonResult struct {
	Machine     string
	Benchmark   string
	NaivePST    float64
	AwarePST    float64
	NaiveLayout []int
	AwareLayout []int
	NaiveSwaps  int
	AwareSwaps  int
}

// AllocationComparison runs BV-6 on melbourne under both allocators.
func AllocationComparison(ctx context.Context, cfg Config) (AllocationComparisonResult, error) {
	dev := device.IBMQMelbourne()
	m := cfg.machine(dev)
	bench := kernels.BV("bv-6", bitstring.MustParse("011111"))
	res := AllocationComparisonResult{Machine: dev.Name, Benchmark: bench.Name}
	shots := cfg.shots(16000)

	run := func(plan *transpile.Plan, seed int64) (float64, error) {
		opt := m.Opt
		opt.Shots = shots
		opt.Seed = seed
		raw, err := m.Runner()(ctx, plan.Physical, dev, opt)
		if err != nil {
			return 0, err
		}
		d := plan.ExtractLogical(raw).Dist()
		return metrics.PST(d, bench.Correct[0]), nil
	}

	naive, err := transpile.PlaceNaive(bench.Circuit, dev)
	if err != nil {
		return res, err
	}
	aware, err := transpile.Place(bench.Circuit, dev)
	if err != nil {
		return res, err
	}
	res.NaiveLayout, res.AwareLayout = naive.InitialLayout, aware.InitialLayout
	res.NaiveSwaps, res.AwareSwaps = naive.SwapCount, aware.SwapCount
	if res.NaivePST, err = run(naive, cfg.Seed+801); err != nil {
		return res, err
	}
	if res.AwarePST, err = run(aware, cfg.Seed+802); err != nil {
		return res, err
	}
	return res, nil
}

// Render formats the allocation comparison.
func (r AllocationComparisonResult) Render() string {
	return fmt.Sprintf("%s on %s:\n", r.Benchmark, r.Machine) + report.Table(
		[]string{"allocation", "layout", "swaps", "PST"},
		[][]string{
			{"naive (identity)", fmt.Sprint(r.NaiveLayout), fmt.Sprint(r.NaiveSwaps), report.Pct(r.NaivePST)},
			{"variability-aware", fmt.Sprint(r.AwareLayout), fmt.Sprint(r.AwareSwaps), report.Pct(r.AwarePST)},
		},
	)
}

// ScheduleAblationResult measures how the decoherence model changes the
// paper's GHZ bias probe: relaxing qubits only while gates act on them
// versus through every idle window of the ASAP schedule.
type ScheduleAblationResult struct {
	Machine        string
	GateOnlySkew   float64
	ScheduledSkew  float64
	GateOnlyPOnes  float64
	ScheduledPOnes float64
}

// ScheduleAblation runs GHZ-5 on melbourne under both decay models. The
// schedule-aware model decays the all-ones branch harder (qubits idle
// while the CNOT chain advances), widening the Fig 6 skew toward the
// paper's hardware measurement.
func ScheduleAblation(ctx context.Context, cfg Config) (ScheduleAblationResult, error) {
	dev := device.IBMQMelbourne()
	res := ScheduleAblationResult{Machine: dev.Name}
	shots := cfg.shots(32000)

	run := func(scheduleAware bool, seed int64) (skew, pOnes float64, err error) {
		m := cfg.machine(dev)
		m.Opt.ScheduleAwareDecay = scheduleAware
		job, err := core.NewJob(kernels.GHZ(5), m)
		if err != nil {
			return 0, 0, err
		}
		counts, err := job.BaselineContext(ctx, shots, seed)
		if err != nil {
			return 0, 0, err
		}
		d := counts.Dist()
		p0 := d.Prob(bitstring.Zeros(5))
		p1 := d.Prob(bitstring.Ones(5))
		if p1 > 0 {
			skew = p0 / p1
		}
		return skew, p1, nil
	}

	var err error
	if res.GateOnlySkew, res.GateOnlyPOnes, err = run(false, cfg.Seed+811); err != nil {
		return res, err
	}
	if res.ScheduledSkew, res.ScheduledPOnes, err = run(true, cfg.Seed+812); err != nil {
		return res, err
	}
	return res, nil
}

// Render formats the schedule ablation.
func (r ScheduleAblationResult) Render() string {
	return fmt.Sprintf("GHZ-5 on %s (paper Fig 6: skew ≈ 4x):\n", r.Machine) + report.Table(
		[]string{"decay model", "P(11111)", "skew P(00000)/P(11111)"},
		[][]string{
			{"gate-time only", report.F(r.GateOnlyPOnes), fmt.Sprintf("%.2fx", r.GateOnlySkew)},
			{"schedule-aware (idle windows)", report.F(r.ScheduledPOnes), fmt.Sprintf("%.2fx", r.ScheduledSkew)},
		},
	)
}

package experiments

import (
	"context"
	"strings"
	"testing"
)

// quick returns a configuration small enough for CI but large enough for
// the shape assertions to be statistically stable.
func quick(scale float64, seed int64) Config { return Config{Scale: scale, Seed: seed} }

func TestConfigShots(t *testing.T) {
	if got := (Config{}).shots(16000); got != 16000 {
		t.Errorf("default scale shots = %d", got)
	}
	if got := (Config{Scale: 0.5}).shots(16000); got != 8000 {
		t.Errorf("half scale shots = %d", got)
	}
	if got := (Config{Scale: 0.001}).shots(16000); got != 400 {
		t.Errorf("floor shots = %d", got)
	}
}

func TestFigure1Shape(t *testing.T) {
	r, err := Figure1(context.Background(), quick(0.25, 1))
	if err != nil {
		t.Fatal(err)
	}
	if !(r.PSTZeros > r.PSTInverted && r.PSTInverted > r.PSTOnes) {
		t.Errorf("Fig 1 ordering: zeros=%.3f inverted=%.3f ones=%.3f",
			r.PSTZeros, r.PSTInverted, r.PSTOnes)
	}
	if s := r.Render(); !strings.Contains(s, "invert-and-measure") {
		t.Errorf("render missing label:\n%s", s)
	}
}

func TestTable1MatchesPaperStats(t *testing.T) {
	r, err := Table1(context.Background(), quick(1, 2)) // full shots: cheap (basis preps only)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	want := map[string][3]float64{
		"ibmqx2":         {0.012, 0.038, 0.128},
		"ibmqx4":         {0.034, 0.082, 0.207},
		"ibmq-melbourne": {0.022, 0.0812, 0.310},
	}
	for _, row := range r.Rows {
		w := want[row.Machine]
		if diff := abs(row.Min - w[0]); diff > 0.01 {
			t.Errorf("%s min = %v, want ≈ %v", row.Machine, row.Min, w[0])
		}
		if diff := abs(row.Avg - w[1]); diff > 0.01 {
			t.Errorf("%s avg = %v, want ≈ %v", row.Machine, row.Avg, w[1])
		}
		if diff := abs(row.Max - w[2]); diff > 0.025 {
			t.Errorf("%s max = %v, want ≈ %v", row.Machine, row.Max, w[2])
		}
	}
	if s := r.Render(); !strings.Contains(s, "ibmq-melbourne") {
		t.Errorf("render:\n%s", s)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestFigure4Shape(t *testing.T) {
	r, err := Figure4(context.Background(), quick(0.05, 3))
	if err != nil {
		t.Fatal(err)
	}
	if r.Correlation > -0.7 {
		t.Errorf("ibmqx2 BMS-weight correlation = %v, want strongly negative (paper -0.93)", r.Correlation)
	}
	// First state (00000) is the relative maximum; last (11111) is weak.
	if r.Direct[0] < 0.99 {
		t.Errorf("direct[00000] = %v, want ≈ 1 (relative)", r.Direct[0])
	}
	last := r.Direct[len(r.Direct)-1]
	if last >= 0.95 {
		t.Errorf("direct[11111] = %v, want visibly below 1", last)
	}
	if r.ESCTvsDirectMSE > 1e-4 {
		t.Errorf("ESCT MSE = %v", r.ESCTvsDirectMSE)
	}
}

func TestFigure5Shape(t *testing.T) {
	r, err := Figure5(context.Background(), quick(0.2, 4))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.ByWeight) != 11 {
		t.Fatalf("weights = %d", len(r.ByWeight))
	}
	// Monotone decreasing trend: endpoint gap and overall correlation.
	if r.ByWeight[10] >= r.ByWeight[0]*0.95 {
		t.Errorf("weight-10 strength %v not below weight-0 %v", r.ByWeight[10], r.ByWeight[0])
	}
	if r.Correlation > -0.5 {
		t.Errorf("melbourne correlation = %v", r.Correlation)
	}
	// Per-step trend with slack for sampling noise at the sparse
	// high-weight bins (weight 10 is a single state).
	for w := 1; w <= 10; w++ {
		if r.ByWeight[w] > r.ByWeight[w-1]*1.25 {
			t.Errorf("weight %d strength %v rises above weight %d (%v)", w, r.ByWeight[w], w-1, r.ByWeight[w-1])
		}
	}
}

func TestFigure3Shape(t *testing.T) {
	r, err := Figure3(context.Background(), quick(0.5, 5))
	if err != nil {
		t.Fatal(err)
	}
	// The good key stays inferable; the all-ones key is weaker.
	if r.GoodKeyIST <= r.BadKeyIST {
		t.Errorf("IST(good)=%v <= IST(bad)=%v", r.GoodKeyIST, r.BadKeyIST)
	}
	if r.GoodKeyIST < 1 {
		t.Errorf("good key not inferable: IST=%v", r.GoodKeyIST)
	}
	if got := r.Ideal.Prob(r.GoodTarget); got != 1 {
		t.Errorf("ideal P(target) = %v", got)
	}
}

func TestFigure6Shape(t *testing.T) {
	r, err := Figure6(context.Background(), quick(0.25, 6))
	if err != nil {
		t.Fatal(err)
	}
	if r.PZeros <= r.POnes {
		t.Errorf("GHZ skew missing: P0=%v P1=%v", r.PZeros, r.POnes)
	}
	if r.Skew < 1.3 {
		t.Errorf("GHZ skew = %.2f, want pronounced (paper ≈ 4)", r.Skew)
	}
	if r.PZeros < 0.25 || r.PZeros > 0.55 {
		t.Errorf("P(00000) = %v, paper ≈ 0.4", r.PZeros)
	}
}

func TestTable2Shape(t *testing.T) {
	r, err := Table2(context.Background(), quick(0.1, 7))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 5 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// PST of the low-weight graphs beats the high-weight graphs
	// (paper: A,B ≈ 2x of D,E), and ROCA degrades.
	lowPST := (r.Rows[0].PST + r.Rows[1].PST) / 2
	highPST := (r.Rows[3].PST + r.Rows[4].PST) / 2
	if lowPST <= highPST {
		t.Errorf("PST did not degrade with weight: low %v, high %v", lowPST, highPST)
	}
	if r.Rows[0].ROCA > r.Rows[4].ROCA {
		t.Errorf("ROCA did not degrade: A=%d E=%d", r.Rows[0].ROCA, r.Rows[4].ROCA)
	}
}

func TestFigure7WorkedExample(t *testing.T) {
	r := Figure7(Config{})
	// Paper Fig 7(D): merged distribution has 101 at 0.55 and rank 1;
	// the standard mode alone ranked it second.
	if r.StandardRank != 2 {
		t.Errorf("standard rank = %d, want 2", r.StandardRank)
	}
	if r.MergedRank != 1 {
		t.Errorf("merged rank = %d, want 1", r.MergedRank)
	}
	if got := r.Merged.Prob(r.Correct); abs(got-0.55) > 1e-9 {
		t.Errorf("merged P(101) = %v, want 0.55", got)
	}
}

func TestFigure9Shape(t *testing.T) {
	r, err := Figure9(context.Background(), quick(0.15, 8))
	if err != nil {
		t.Fatal(err)
	}
	if r.SIMROCA > r.BaselineROCA {
		t.Errorf("SIM ROCA %d worse than baseline %d", r.SIMROCA, r.BaselineROCA)
	}
	if r.SIMIST < r.BaselineIST {
		t.Errorf("SIM IST %v below baseline %v", r.SIMIST, r.BaselineIST)
	}
	if len(r.Baseline) != 64 || len(r.SIM) != 64 {
		t.Fatalf("series lengths %d/%d", len(r.Baseline), len(r.SIM))
	}
}

func TestSuiteShape(t *testing.T) {
	r, err := RunSuite(context.Background(), quick(0.04, 9))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 12 {
		t.Fatalf("suite rows = %d", len(r.Rows))
	}
	sim, aim := r.MeanImprovement()
	if sim <= 1.0 {
		t.Errorf("mean SIM improvement = %v, want > 1", sim)
	}
	if aim <= sim {
		t.Errorf("mean AIM improvement %v not above SIM %v", aim, sim)
	}
	// ibmqx4 (heavily biased) should gain more from SIM than ibmqx2
	// (paper: 74% vs 22%).
	gain := func(machineName string) float64 {
		var g float64
		var n int
		for _, row := range r.Rows {
			if row.Machine == machineName && row.Baseline.PST > 0 {
				g += row.SIM.PST / row.Baseline.PST
				n++
			}
		}
		return g / float64(n)
	}
	if gain("ibmqx4") <= gain("ibmqx2") {
		t.Errorf("SIM gain on ibmqx4 (%v) not above ibmqx2 (%v)", gain("ibmqx4"), gain("ibmqx2"))
	}
	for _, render := range []string{r.Figure10(), r.Figure14(), r.Table5()} {
		if !strings.Contains(render, "ibmqx4") {
			t.Errorf("render missing machines:\n%s", render)
		}
	}
}

func TestFigure11Shape(t *testing.T) {
	r, err := Figure11(context.Background(), quick(0.15, 10))
	if err != nil {
		t.Fatal(err)
	}
	// (a) arbitrary bias: weight correlation much weaker than ibmqx2's.
	if r.BasisHammingCorr < -0.85 {
		t.Errorf("ibmqx4 basis-PST weight correlation = %v, expected weak", r.BasisHammingCorr)
	}
	// (b) correlates positively with (a); gate noise in the BV circuits
	// keeps this well below 1 at reduced scale.
	if r.Correlation < 0.2 {
		t.Errorf("BV PST vs basis PST correlation = %v, want positive", r.Correlation)
	}
}

func TestFigure13Shape(t *testing.T) {
	r, err := Figure13(context.Background(), quick(0.04, 11))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 32 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	if r.AIMMean <= r.BaselineMean {
		t.Errorf("AIM mean %v not above baseline %v", r.AIMMean, r.BaselineMean)
	}
	if r.AIMSpread >= r.BaselineSpread {
		t.Errorf("AIM spread %v not below baseline %v", r.AIMSpread, r.BaselineSpread)
	}
	// Trivial all-zeros case: baseline may win (paper's noted exception).
	if r.Rows[0].Target.HammingWeight() != 0 {
		t.Errorf("first row should be all-zeros, got %v", r.Rows[0].Target)
	}
}

func TestTable3Characteristics(t *testing.T) {
	rows := Table3()
	if len(rows) != 8 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]Table3Row{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	// Gate counts scale roughly linearly with problem size (§4.1).
	if byName["bv-7"].Gates2Q >= 3*byName["bv-4A"].Gates2Q {
		t.Errorf("BV 2q gate scaling looks superlinear: %d vs %d",
			byName["bv-7"].Gates2Q, byName["bv-4A"].Gates2Q)
	}
	if byName["qaoa-4A"].Output != "Output cut: 0101" {
		t.Errorf("qaoa-4A output = %q", byName["qaoa-4A"].Output)
	}
	if s := RenderTable3(rows); !strings.Contains(s, "bv-7") {
		t.Errorf("render:\n%s", s)
	}
}

func TestFigure15Shape(t *testing.T) {
	r, err := Figure15(context.Background(), quick(0.05, 12))
	if err != nil {
		t.Fatal(err)
	}
	if r.ESCTvsDirectMSE > 1e-4 {
		t.Errorf("ESCT MSE = %v", r.ESCTvsDirectMSE)
	}
	if r.AWCTvsDirectMSE > 2e-4 {
		t.Errorf("AWCT MSE = %v", r.AWCTvsDirectMSE)
	}
	if len(r.Direct) != 32 || len(r.ESCT) != 32 || len(r.AWCT) != 32 {
		t.Fatalf("series lengths %d/%d/%d", len(r.Direct), len(r.ESCT), len(r.AWCT))
	}
}

func TestRepeatabilityShape(t *testing.T) {
	r, err := Repeatability(context.Background(), quick(0.25, 13))
	if err != nil {
		t.Fatal(err)
	}
	if r.Cycles < 5 || len(r.SpearmanToNominal) != r.Cycles {
		t.Fatalf("cycles = %d, series = %d", r.Cycles, len(r.SpearmanToNominal))
	}
	// §6.1: the bias ordering is repeatable — high rank correlation in
	// every cycle despite calibration drift.
	if r.MinCorrelation < 0.6 {
		t.Errorf("min rank correlation = %v, want repeatable bias", r.MinCorrelation)
	}
	if r.MeanCorrelation < 0.8 {
		t.Errorf("mean rank correlation = %v", r.MeanCorrelation)
	}
	if r.StrongestStable < r.Cycles/2 {
		t.Errorf("strongest state stable in only %d/%d cycles", r.StrongestStable, r.Cycles)
	}
}

func TestMitigationComparisonShape(t *testing.T) {
	r, err := MitigationComparison(context.Background(), quick(0.15, 14))
	if err != nil {
		t.Fatal(err)
	}
	byPolicy := map[string]MitigationComparisonRow{}
	for _, row := range r.Rows {
		byPolicy[row.Policy] = row
	}
	base := byPolicy["baseline"].PST
	// Every mitigation technique must beat the raw baseline on this
	// vulnerable workload.
	for _, policy := range []string{"SIM", "AIM", "matrix (tensored)", "matrix (full)", "SIM + tensored"} {
		if byPolicy[policy].PST <= base {
			t.Errorf("%s PST %.4f not above baseline %.4f", policy, byPolicy[policy].PST, base)
		}
	}
	// Composition should not hurt SIM.
	if byPolicy["SIM + tensored"].PST < byPolicy["SIM"].PST {
		t.Errorf("composition %.4f below SIM alone %.4f",
			byPolicy["SIM + tensored"].PST, byPolicy["SIM"].PST)
	}
	if s := r.Render(); !strings.Contains(s, "matrix (full)") {
		t.Errorf("render:\n%s", s)
	}
}

func TestAllocationComparisonShape(t *testing.T) {
	r, err := AllocationComparison(context.Background(), quick(0.25, 15))
	if err != nil {
		t.Fatal(err)
	}
	// Variability-aware allocation must beat the identity allocation on
	// melbourne, whose identity layout includes high-error qubits.
	if r.AwarePST <= r.NaivePST {
		t.Errorf("aware %.4f not above naive %.4f", r.AwarePST, r.NaivePST)
	}
	if s := r.Render(); !strings.Contains(s, "variability-aware") {
		t.Errorf("render:\n%s", s)
	}
}

func TestScheduleAblationShape(t *testing.T) {
	r, err := ScheduleAblation(context.Background(), quick(0.25, 16))
	if err != nil {
		t.Fatal(err)
	}
	// Idle-window decay hits the all-ones GHZ branch harder: skew widens.
	if r.ScheduledSkew <= r.GateOnlySkew {
		t.Errorf("schedule-aware skew %.2f not above gate-only %.2f", r.ScheduledSkew, r.GateOnlySkew)
	}
	if r.ScheduledPOnes >= r.GateOnlyPOnes {
		t.Errorf("schedule-aware P(11111) %.4f not below gate-only %.4f", r.ScheduledPOnes, r.GateOnlyPOnes)
	}
}

func TestScalingShape(t *testing.T) {
	r, err := Scaling(context.Background(), quick(0.1, 17))
	if err != nil {
		t.Fatal(err)
	}
	if r.Width != 12 {
		t.Fatalf("width = %d", r.Width)
	}
	// The all-ones key is the vulnerable case: every mitigation must
	// beat the baseline at 16 qubits too.
	if r.SIMPST <= r.BaselinePST {
		t.Errorf("SIM %.4f not above baseline %.4f", r.SIMPST, r.BaselinePST)
	}
	if r.AIMPST <= r.BaselinePST {
		t.Errorf("AIM %.4f not above baseline %.4f", r.AIMPST, r.BaselinePST)
	}
	if r.ReducedPST <= r.BaselinePST {
		t.Errorf("reduced matrix %.4f not above baseline %.4f", r.ReducedPST, r.BaselinePST)
	}
	if s := r.Render(); !strings.Contains(s, "AWCT") {
		t.Errorf("render:\n%s", s)
	}
}

func TestZNEComparisonShape(t *testing.T) {
	r, err := ZNEComparison(context.Background(), quick(0.2, 18))
	if err != nil {
		t.Fatal(err)
	}
	// Noise pulls the expected cut below ideal; each mitigation closes
	// part of the gap and the composition closes the most.
	if r.Raw >= r.Ideal {
		t.Fatalf("premise broken: raw %v not below ideal %v", r.Raw, r.Ideal)
	}
	gap := func(v float64) float64 { return abs(r.Ideal - v) }
	if gap(r.ZNEOnly) >= gap(r.Raw) {
		t.Errorf("ZNE did not help: raw gap %v, ZNE gap %v", gap(r.Raw), gap(r.ZNEOnly))
	}
	if gap(r.ZNEPlus) >= gap(r.SIMOnly) {
		t.Errorf("composition (%v) not better than SIM alone (%v)", gap(r.ZNEPlus), gap(r.SIMOnly))
	}
	if s := r.Render(); !strings.Contains(s, "ZNE + SIM") {
		t.Errorf("render:\n%s", s)
	}
}

func TestFigure8Shape(t *testing.T) {
	r, err := Figure8(context.Background(), quick(0.25, 19))
	if err != nil {
		t.Fatal(err)
	}
	worst := r.Standard
	if r.Inverted < worst {
		worst = r.Inverted
	}
	// Averaging over four modes must beat the worst single mode and stay
	// within the single-mode envelope.
	if r.SIM4 <= worst {
		t.Errorf("4-string SIM %.4f not above the worst mode %.4f", r.SIM4, worst)
	}
	best := r.Standard
	if r.Inverted > best {
		best = r.Inverted
	}
	if r.SIM4 > best+0.02 || r.SIM2 > best+0.02 {
		t.Errorf("merged PST escaped the mode envelope: sim2 %.4f sim4 %.4f best %.4f", r.SIM2, r.SIM4, best)
	}
	if s := r.Render(); !strings.Contains(s, "4 strings") {
		t.Errorf("render:\n%s", s)
	}
}

package experiments

import (
	"context"
	"fmt"

	"biasmit/internal/bitstring"
	"biasmit/internal/core"
	"biasmit/internal/device"
	"biasmit/internal/kernels"
	"biasmit/internal/metrics"
	"biasmit/internal/report"
)

// Figure8Result reproduces Fig 8's point: for a state like "0101" whose
// complement is also mediocre, two inversion strings (standard +
// inverted) are not enough — the four-string set covering the Hamming
// space recovers reliability close to the machine's average.
type Figure8Result struct {
	Machine string
	State   bitstring.Bits
	// PST under 1, 2, and 4 inversion strings, plus per-single-mode PSTs
	// for the narrative (state measured as itself vs fully inverted).
	Standard float64
	Inverted float64
	SIM2     float64
	SIM4     float64
}

// Figure8 measures the 4-bit state "0101" on the ibmqx4 model under
// increasing SIM mode counts (the paper's worked diagram uses the same
// state and the four strings 0000/1111/0101/1010).
func Figure8(ctx context.Context, cfg Config) (Figure8Result, error) {
	dev := device.IBMQX4()
	m := cfg.machine(dev)
	state := bitstring.MustParse("0101")
	res := Figure8Result{Machine: dev.Name, State: state}
	job, err := core.NewJob(kernels.BasisPrep(state), m)
	if err != nil {
		return res, err
	}
	shots := cfg.shots(16000)

	std, err := job.RunWithInversionContext(ctx, bitstring.Zeros(4), shots, cfg.Seed+941)
	if err != nil {
		return res, err
	}
	inv, err := job.RunWithInversionContext(ctx, bitstring.Ones(4), shots, cfg.Seed+942)
	if err != nil {
		return res, err
	}
	res.Standard = metrics.PST(std.Dist(), state)
	res.Inverted = metrics.PST(inv.Dist(), state)

	for _, k := range []int{2, 4} {
		strings, err := core.StandardInversionStrings(4, k)
		if err != nil {
			return res, err
		}
		sim, err := core.SIMContext(ctx, job, strings, shots, cfg.Seed+943+int64(k))
		if err != nil {
			return res, err
		}
		pst := metrics.PST(sim.Merged.Dist(), state)
		if k == 2 {
			res.SIM2 = pst
		} else {
			res.SIM4 = pst
		}
	}
	return res, nil
}

// Render formats the mode-count comparison.
func (r Figure8Result) Render() string {
	return fmt.Sprintf("measuring %v on %s (paper Fig 8: the state and its complement are both mediocre):\n",
		r.State, r.Machine) + report.Table(
		[]string{"measurement mode", "PST"},
		[][]string{
			{"standard only", report.F(r.Standard)},
			{"fully inverted only", report.F(r.Inverted)},
			{"SIM, 2 strings", report.F(r.SIM2)},
			{"SIM, 4 strings (paper's set)", report.F(r.SIM4)},
		},
	)
}

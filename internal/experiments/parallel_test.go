package experiments

import (
	"context"
	"errors"
	"testing"
)

// TestTable2ParallelMatchesSequential pins the orchestration contract at
// the driver level: a parallel run is bit-identical to a sequential run
// at the same seed, because every cell's seed is fixed by its position.
func TestTable2ParallelMatchesSequential(t *testing.T) {
	run := func(workers int) Table2Result {
		r, err := Table2(context.Background(), Config{Scale: 0.04, Seed: 21, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	want := run(1)
	got := run(8)
	if len(want.Rows) != len(got.Rows) {
		t.Fatalf("row counts %d vs %d", len(want.Rows), len(got.Rows))
	}
	for i := range want.Rows {
		if want.Rows[i] != got.Rows[i] {
			t.Fatalf("row %d differs:\nsequential: %+v\nparallel:   %+v",
				i, want.Rows[i], got.Rows[i])
		}
	}
}

func TestFigure1ParallelMatchesSequential(t *testing.T) {
	run := func(workers int) Figure1Result {
		r, err := Figure1(context.Background(), Config{Scale: 0.05, Seed: 22, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	if want, got := run(1), run(4); want != got {
		t.Fatalf("sequential %+v != parallel %+v", want, got)
	}
}

func TestDriverCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Table2(ctx, Config{Scale: 0.04, Seed: 23}); !errors.Is(err, context.Canceled) {
		t.Fatalf("Table2 err = %v, want context.Canceled", err)
	}
	if _, err := Figure1(ctx, Config{Scale: 0.05, Seed: 23}); !errors.Is(err, context.Canceled) {
		t.Fatalf("Figure1 err = %v, want context.Canceled", err)
	}
}

package experiments

import (
	"context"
	"fmt"

	"biasmit/internal/bitstring"
	"biasmit/internal/core"
	"biasmit/internal/device"
	"biasmit/internal/dist"
	"biasmit/internal/kernels"
	"biasmit/internal/maxcut"
	"biasmit/internal/metrics"
	"biasmit/internal/orchestrate"
	"biasmit/internal/report"
)

// PolicyMetrics bundles the reliability metrics of one policy's output.
type PolicyMetrics struct {
	PST  float64
	IST  float64
	ROCA int
}

// evaluate scores an output log the way the paper does: PST pools every
// equivalent correct answer (a QAOA cut and its complement, §4.2.1),
// while IST and ROCA track the published optimum string alone — on a
// biased machine a high-weight optimum can be outranked even by its own
// low-weight complement, which is exactly the masking the paper reports
// (Table 2, Fig 9).
func evaluate(d dist.Dist, correct []bitstring.Bits) PolicyMetrics {
	return PolicyMetrics{
		PST:  metrics.PSTEquiv(d, correct...),
		IST:  metrics.IST(d, correct[0]),
		ROCA: metrics.ROCA(d, correct[0]),
	}
}

// SuiteRow is one machine × benchmark evaluation across all three
// policies.
type SuiteRow struct {
	Machine   string
	Benchmark string
	Baseline  PolicyMetrics
	SIM       PolicyMetrics
	AIM       PolicyMetrics
}

// SuiteResult is the shared evaluation behind Fig 10, Fig 14 and
// Table 5: the paper's benchmark suite run under baseline, SIM, and AIM
// on all three machines.
type SuiteResult struct {
	Rows []SuiteRow
}

// suitePlan lists which benchmarks run on which machine, following the
// paper: the 4-bit benchmarks on the two 5-qubit machines, the scaled
// ones on melbourne.
func suitePlan() map[string][]string {
	return map[string][]string{
		"ibmqx2":         {"bv-4A", "bv-4B", "qaoa-4A", "qaoa-4B"},
		"ibmqx4":         {"bv-4A", "bv-4B", "qaoa-4A", "qaoa-4B"},
		"ibmq-melbourne": {"bv-6", "bv-7", "qaoa-6", "qaoa-7"},
	}
}

// BenchmarkByName builds one of the paper's suite benchmarks by its
// Table 3 identifier (bv-4A … qaoa-7). Shared with cmd/mitigate.
func BenchmarkByName(name string) (kernels.Benchmark, error) {
	switch name {
	case "bv-4A":
		return kernels.BV(name, bitstring.MustParse("0111")), nil
	case "bv-4B":
		return kernels.BV(name, bitstring.MustParse("1111")), nil
	case "bv-6":
		return kernels.BV(name, bitstring.MustParse("011111")), nil
	case "bv-7":
		return kernels.BV(name, bitstring.MustParse("0111111")), nil
	case "qaoa-4A", "qaoa-4B", "qaoa-6", "qaoa-7":
		pg, err := maxcut.Table3Graph(name)
		if err != nil {
			return kernels.Benchmark{}, err
		}
		p := 2
		if name == "qaoa-4A" {
			p = 1
		}
		return kernels.QAOA(name, pg, p), nil
	}
	return kernels.Benchmark{}, fmt.Errorf("experiments: unknown benchmark %q", name)
}

// profileRBMS learns the machine's measurement-strength profile for the
// job's output register: brute force on the 5-qubit machines, AWCT
// (window 4, overlap 2) on melbourne, as in the paper (§6.2.1).
func profileRBMS(ctx context.Context, job *core.Job, cfg Config, seed int64) (core.RBMS, error) {
	prof := job.Profiler()
	if len(prof.Layout) <= 5 {
		return prof.BruteForceContext(ctx, cfg.shots(4096), seed)
	}
	return prof.AWCTContext(ctx, 4, 2, cfg.shots(16000), seed)
}

// suiteCell is one machine × benchmark evaluation unit of RunSuite.
type suiteCell struct {
	dev      *device.Device
	name     string
	seedBase int64
}

// RunSuite executes the full benchmark suite under the three policies.
// The machine × benchmark cells are independent and run on cfg.Workers
// goroutines; each cell's seed base depends only on its (machine,
// benchmark) position, so the table is bit-identical at every worker
// count.
func RunSuite(ctx context.Context, cfg Config) (*SuiteResult, error) {
	shots := cfg.shots(32000)
	var cells []suiteCell
	machineIdx := int64(0)
	for _, dev := range device.AllMachines() {
		for bi, name := range suitePlan()[dev.Name] {
			cells = append(cells, suiteCell{
				dev:      dev,
				name:     name,
				seedBase: cfg.Seed + 1000*machineIdx + 100*int64(bi),
			})
		}
		machineIdx++
	}
	rows, err := orchestrate.Map(ctx, cfg.workers(), cells,
		func(ctx context.Context, _ int, cell suiteCell) (SuiteRow, error) {
			bench, err := BenchmarkByName(cell.name)
			if err != nil {
				return SuiteRow{}, err
			}
			job, err := core.NewJob(bench.Circuit, cfg.machine(cell.dev))
			if err != nil {
				return SuiteRow{}, fmt.Errorf("experiments: %s on %s: %w", cell.name, cell.dev.Name, err)
			}
			base, err := job.BaselineContext(ctx, shots, cell.seedBase+1)
			if err != nil {
				return SuiteRow{}, err
			}
			sim, err := core.SIM4Context(ctx, job, shots, cell.seedBase+2)
			if err != nil {
				return SuiteRow{}, err
			}
			rbms, err := profileRBMS(ctx, job, cfg, cell.seedBase+3)
			if err != nil {
				return SuiteRow{}, err
			}
			aim, err := core.AIMContext(ctx, job, rbms, core.AIMConfig{}, shots, cell.seedBase+4)
			if err != nil {
				return SuiteRow{}, err
			}
			return SuiteRow{
				Machine:   cell.dev.Name,
				Benchmark: cell.name,
				Baseline:  evaluate(base.Dist(), bench.Correct),
				SIM:       evaluate(sim.Merged.Dist(), bench.Correct),
				AIM:       evaluate(aim.Merged.Dist(), bench.Correct),
			}, nil
		})
	if err != nil {
		return nil, err
	}
	return &SuiteResult{Rows: rows}, nil
}

// Figure10 renders the SIM part of the suite: PST of SIM normalized to
// the baseline per machine × benchmark (paper: up to 2X, largest on
// ibmqx4).
func (r *SuiteResult) Figure10() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rel := ratioOrInf(row.SIM.PST, row.Baseline.PST)
		rows = append(rows, []string{
			row.Machine, row.Benchmark,
			report.Pct(row.Baseline.PST), report.Pct(row.SIM.PST), rel,
		})
	}
	return report.Table([]string{"machine", "benchmark", "baseline PST", "SIM PST", "SIM/baseline"}, rows)
}

// Figure14 renders the SIM and AIM PST improvements normalized to the
// baseline (paper: SIM up to 2X, AIM up to 3X).
func (r *SuiteResult) Figure14() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Machine, row.Benchmark,
			report.Pct(row.Baseline.PST),
			ratioOrInf(row.SIM.PST, row.Baseline.PST),
			ratioOrInf(row.AIM.PST, row.Baseline.PST),
		})
	}
	return report.Table([]string{"machine", "benchmark", "baseline PST", "SIM/baseline", "AIM/baseline"}, rows)
}

// table5Paper holds the paper's published IST values for annotation.
// The melbourne and ibmqx4-QAOA rows extract cleanly from the paper; the
// ibmqx4 BV-4A row is anchored by §7.1's prose (0.46 → 2.85 → 10.38).
// The remaining ibmqx2/ibmqx4 cells are a best-effort reconstruction of a
// garbled PDF table region and are marked "~".
var table5Paper = map[string][3]string{
	"ibmqx2/bv-4A":          {"~0.9", "~1.22", "~1.12"},
	"ibmqx2/bv-4B":          {"~0.86", "~1.25", "~1.83"},
	"ibmqx2/qaoa-4A":        {"~0.73", "~1.27", "~1.32"},
	"ibmqx2/qaoa-4B":        {"~0.72", "-", "-"},
	"ibmqx4/bv-4A":          {"0.46", "2.85", "10.38"},
	"ibmqx4/bv-4B":          {"~0.96", "~4.8", "~5.7"},
	"ibmqx4/qaoa-4A":        {"0.82", "1.94", "2.03"},
	"ibmqx4/qaoa-4B":        {"0.72", "2.67", "1.98"},
	"ibmq-melbourne/bv-6":   {"0.70", "0.93", "1.02"},
	"ibmq-melbourne/bv-7":   {"0.62", "0.84", "1.09"},
	"ibmq-melbourne/qaoa-6": {"0.23", "0.72", "0.86"},
	"ibmq-melbourne/qaoa-7": {"0.18", "0.36", "0.78"},
}

// Table5 renders the IST of every policy with the paper's values.
func (r *SuiteResult) Table5() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		paper := table5Paper[row.Machine+"/"+row.Benchmark]
		rows = append(rows, []string{
			row.Machine, row.Benchmark,
			paper[0], report.F(row.Baseline.IST),
			paper[1], report.F(row.SIM.IST),
			paper[2], report.F(row.AIM.IST),
		})
	}
	return report.Table(
		[]string{"machine", "benchmark", "paper base", "base IST", "paper SIM", "SIM IST", "paper AIM", "AIM IST"},
		rows,
	)
}

func ratioOrInf(num, den float64) string {
	if den == 0 {
		return "inf"
	}
	return fmt.Sprintf("%.2fx", num/den)
}

// MeanImprovement returns the geometric-mean-free average PST improvement
// of each policy over the baseline across all rows, for the shape
// assertions in tests (SIM > 1, AIM > SIM on average).
func (r *SuiteResult) MeanImprovement() (sim, aim float64) {
	n := 0
	for _, row := range r.Rows {
		if row.Baseline.PST == 0 {
			continue
		}
		sim += row.SIM.PST / row.Baseline.PST
		aim += row.AIM.PST / row.Baseline.PST
		n++
	}
	if n > 0 {
		sim /= float64(n)
		aim /= float64(n)
	}
	return sim, aim
}

package experiments

import (
	"context"
	"fmt"

	"biasmit/internal/bitstring"
	"biasmit/internal/core"
	"biasmit/internal/device"
	"biasmit/internal/dist"
	"biasmit/internal/kernels"
	"biasmit/internal/metrics"
	"biasmit/internal/orchestrate"
	"biasmit/internal/report"
)

// Figure1Result reproduces Fig 1: measuring the all-zero and all-one
// states on an IBM-Q5 machine, with and without Invert-and-Measure.
type Figure1Result struct {
	Machine     string
	PSTZeros    float64 // paper: 0.84
	PSTOnes     float64 // paper: 0.62
	PSTInverted float64 // paper: 0.78
}

// Figure1 runs the paper's motivating experiment on the ibmqx4 model.
// The three measurements are independent and run on cfg.Workers
// goroutines.
func Figure1(ctx context.Context, cfg Config) (Figure1Result, error) {
	dev := device.IBMQX4()
	m := cfg.machine(dev)
	shots := cfg.shots(16000)
	layout := identityLayout(5)

	jobZeros, err := core.NewJobWithLayout(kernels.BasisPrep(bitstring.Zeros(5)), m, layout)
	if err != nil {
		return Figure1Result{}, err
	}
	jobOnes, err := core.NewJobWithLayout(kernels.BasisPrep(bitstring.Ones(5)), m, layout)
	if err != nil {
		return Figure1Result{}, err
	}
	runs, err := orchestrate.Map(ctx, cfg.workers(), []int{0, 1, 2},
		func(ctx context.Context, _, which int) (*dist.Counts, error) {
			switch which {
			case 0:
				return jobZeros.BaselineContext(ctx, shots, cfg.Seed+1)
			case 1:
				return jobOnes.BaselineContext(ctx, shots, cfg.Seed+2)
			default:
				return jobOnes.RunWithInversionContext(ctx, bitstring.Ones(5), shots, cfg.Seed+3)
			}
		})
	if err != nil {
		return Figure1Result{}, err
	}
	cZeros, cOnes, cInv := runs[0], runs[1], runs[2]
	return Figure1Result{
		Machine:     dev.Name,
		PSTZeros:    float64(cZeros.Get(bitstring.Zeros(5))) / float64(shots),
		PSTOnes:     float64(cOnes.Get(bitstring.Ones(5))) / float64(shots),
		PSTInverted: float64(cInv.Get(bitstring.Ones(5))) / float64(shots),
	}, nil
}

// Render formats the result next to the paper's published values.
func (r Figure1Result) Render() string {
	return report.Table(
		[]string{"measurement", "paper", "measured"},
		[][]string{
			{"all-zeros (00000), standard", "0.84", report.F(r.PSTZeros)},
			{"all-ones (11111), standard", "0.62", report.F(r.PSTOnes)},
			{"all-ones (11111), invert-and-measure", "0.78", report.F(r.PSTInverted)},
		},
	)
}

// Table1Row is one machine's measured readout error summary.
type Table1Row struct {
	Machine       string
	Min, Avg, Max float64
}

// Table1Result reproduces Table 1: min/average/max measurement error per
// machine, measured by preparing |0⟩ and |1⟩ on every qubit.
type Table1Result struct {
	Rows []Table1Row
}

// Table1 measures the per-qubit readout error of all three machines the
// way a standard calibration pass does: P(read 1 | prepared 0) from an
// all-zeros preparation, and P(read 0 | prepared 1) by exciting one qubit
// at a time (so readout crosstalk from other excited qubits does not
// contaminate the per-qubit numbers).
func Table1(ctx context.Context, cfg Config) (Table1Result, error) {
	var res Table1Result
	shots := cfg.shots(8192)
	for _, dev := range device.AllMachines() {
		m := cfg.readoutOnly(dev)
		layout := identityLayout(dev.NumQubits)

		measureFlip := func(ctx context.Context, state bitstring.Bits, q int, seed int64) (float64, error) {
			job, err := core.NewJobWithLayout(kernels.BasisPrep(state), m, layout)
			if err != nil {
				return 0, err
			}
			counts, err := job.BaselineContext(ctx, shots, seed)
			if err != nil {
				return 0, err
			}
			flips := 0
			for _, out := range counts.Outcomes() {
				if out.Bit(q) != state.Bit(q) {
					flips += counts.Get(out)
				}
			}
			return float64(flips) / float64(counts.Total()), nil
		}

		// The per-qubit calibration circuits are independent; run them on
		// cfg.Workers goroutines and fold the errors in qubit order so the
		// row statistics match the sequential pass bit for bit.
		zeros := bitstring.Zeros(dev.NumQubits)
		qubits := make([]int, dev.NumQubits)
		for q := range qubits {
			qubits[q] = q
		}
		errs, err := orchestrate.Map(ctx, cfg.workers(), qubits,
			func(ctx context.Context, _, q int) (float64, error) {
				p01, err := measureFlip(ctx, zeros, q, cfg.Seed+11)
				if err != nil {
					return 0, err
				}
				p10, err := measureFlip(ctx, zeros.SetBit(q, true), q, cfg.Seed+12+int64(q))
				if err != nil {
					return 0, err
				}
				return (p01 + p10) / 2, nil
			})
		if err != nil {
			return res, err
		}
		row := Table1Row{Machine: dev.Name, Min: 1}
		for _, e := range errs {
			if e < row.Min {
				row.Min = e
			}
			if e > row.Max {
				row.Max = e
			}
			row.Avg += e
		}
		row.Avg /= float64(dev.NumQubits)
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render formats Table 1 with the paper's published values alongside.
func (r Table1Result) Render() string {
	paper := map[string][3]string{
		"ibmqx2":         {"1.20%", "3.8%", "12.8%"},
		"ibmqx4":         {"3.4%", "8.2%", "20.7%"},
		"ibmq-melbourne": {"2.2%", "8.12%", "31%"},
	}
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		p := paper[row.Machine]
		rows = append(rows, []string{
			row.Machine,
			p[0], report.Pct(row.Min),
			p[1], report.Pct(row.Avg),
			p[2], report.Pct(row.Max),
		})
	}
	return report.Table(
		[]string{"machine", "paper min", "min", "paper avg", "avg", "paper max", "max"},
		rows,
	)
}

// Figure4Result reproduces Fig 4: relative BMS of all 32 ibmqx2 basis
// states from direct measurement and from equal superposition, plus the
// BMS↔Hamming-weight correlation (paper: −0.93).
type Figure4Result struct {
	Machine         string
	States          []bitstring.Bits // ascending Hamming weight (x-axis order)
	Direct          []float64        // relative BMS, direct basis measurement
	ESCT            []float64        // relative BMS, equal superposition
	Correlation     float64
	ESCTvsDirectMSE float64
}

// Figure4 characterizes ibmqx2 both ways (§3.1 and Appendix A).
func Figure4(ctx context.Context, cfg Config) (Figure4Result, error) {
	dev := device.IBMQX2()
	m := cfg.machine(dev)
	prof := &core.Profiler{Machine: m, Layout: identityLayout(5)}

	direct, err := prof.BruteForceContext(ctx, cfg.shots(16000), cfg.Seed+21)
	if err != nil {
		return Figure4Result{}, err
	}
	esct, err := prof.ESCTContext(ctx, cfg.shots(16000)*32, cfg.Seed+22)
	if err != nil {
		return Figure4Result{}, err
	}
	corr, err := direct.HammingCorrelation()
	if err != nil {
		return Figure4Result{}, err
	}
	mse, err := esct.MSE(direct)
	if err != nil {
		return Figure4Result{}, err
	}

	res := Figure4Result{
		Machine:         dev.Name,
		States:          bitstring.AllByHammingWeight(5),
		Correlation:     corr,
		ESCTvsDirectMSE: mse,
	}
	directRel, esctRel := direct.Relative(), esct.Relative()
	for _, b := range res.States {
		res.Direct = append(res.Direct, directRel.Of(b))
		res.ESCT = append(res.ESCT, esctRel.Of(b))
	}
	return res, nil
}

// Render draws both curves in Hamming-weight order.
func (r Figure4Result) Render() string {
	labels := make([]string, len(r.States))
	for i, b := range r.States {
		labels[i] = b.String()
	}
	return fmt.Sprintf("relative BMS, direct measurement (corr with Hamming weight %.3f; paper -0.93):\n%s\nrelative BMS, equal superposition (MSE vs direct %.2e):\n%s",
		r.Correlation, report.Bars(labels, r.Direct, 40),
		r.ESCTvsDirectMSE, report.Bars(labels, r.ESCT, 40))
}

// Figure5Result reproduces Fig 5: melbourne's average relative BMS per
// Hamming weight over 10-bit basis states (monotone decreasing, ~0.45 at
// weight 10 in the paper).
type Figure5Result struct {
	Machine     string
	ByWeight    []float64 // average relative strength, index = Hamming weight
	Correlation float64
}

// Figure5 runs ESCT over 10 melbourne qubits (150k trials in the paper)
// and averages the per-state strengths by Hamming weight.
func Figure5(ctx context.Context, cfg Config) (Figure5Result, error) {
	dev := device.IBMQMelbourne()
	m := cfg.machine(dev)
	// Ten-qubit window over the strongest row qubits, as an application
	// would be allocated.
	layout := []int{0, 1, 2, 3, 4, 5, 6, 8, 9, 10}
	prof := &core.Profiler{Machine: m, Layout: layout}
	esct, err := prof.ESCTContext(ctx, cfg.shots(150000), cfg.Seed+31)
	if err != nil {
		return Figure5Result{}, err
	}
	corr, err := esct.HammingCorrelation()
	if err != nil {
		return Figure5Result{}, err
	}
	avg := metrics.AverageByHammingWeight(esct.Strength, 10)
	return Figure5Result{
		Machine:     dev.Name,
		ByWeight:    metrics.Relative(avg),
		Correlation: corr,
	}, nil
}

// Render draws the weight-binned curve.
func (r Figure5Result) Render() string {
	labels := make([]string, len(r.ByWeight))
	for w := range labels {
		labels[w] = fmt.Sprintf("weight %2d", w)
	}
	return fmt.Sprintf("average relative BMS by Hamming weight on %s (corr %.3f):\n%s",
		r.Machine, r.Correlation, report.Bars(labels, r.ByWeight, 40))
}

// Figure15Result reproduces Fig 15: validation of ESCT and AWCT against
// direct characterization on ibmqx4 (sum-normalized curves).
type Figure15Result struct {
	Machine         string
	States          []bitstring.Bits
	Direct          []float64
	ESCT            []float64
	AWCT            []float64
	ESCTvsDirectMSE float64
	AWCTvsDirectMSE float64
}

// Figure15 characterizes ibmqx4 three ways: per-state preparation, one
// equal superposition, and the sliding-window technique with m=4,
// overlap 2.
func Figure15(ctx context.Context, cfg Config) (Figure15Result, error) {
	dev := device.IBMQX4()
	m := cfg.machine(dev)
	prof := &core.Profiler{Machine: m, Layout: identityLayout(5)}

	direct, err := prof.BruteForceContext(ctx, cfg.shots(16000), cfg.Seed+41)
	if err != nil {
		return Figure15Result{}, err
	}
	esct, err := prof.ESCTContext(ctx, cfg.shots(16000)*32, cfg.Seed+42)
	if err != nil {
		return Figure15Result{}, err
	}
	awct, err := prof.AWCTContext(ctx, 4, 2, cfg.shots(16000)*8, cfg.Seed+43)
	if err != nil {
		return Figure15Result{}, err
	}
	mseESCT, err := esct.MSE(direct)
	if err != nil {
		return Figure15Result{}, err
	}
	mseAWCT, err := awct.MSE(direct)
	if err != nil {
		return Figure15Result{}, err
	}
	res := Figure15Result{
		Machine:         dev.Name,
		States:          bitstring.All(5),
		ESCTvsDirectMSE: mseESCT,
		AWCTvsDirectMSE: mseAWCT,
	}
	d, e, a := direct.NormalizeSum(), esct.NormalizeSum(), awct.NormalizeSum()
	for _, b := range res.States {
		res.Direct = append(res.Direct, d.Of(b))
		res.ESCT = append(res.ESCT, e.Of(b))
		res.AWCT = append(res.AWCT, a.Of(b))
	}
	return res, nil
}

// Render lists the three normalized curves side by side.
func (r Figure15Result) Render() string {
	rows := make([][]string, len(r.States))
	for i, b := range r.States {
		rows[i] = []string{
			b.String(), report.F(r.Direct[i]), report.F(r.ESCT[i]), report.F(r.AWCT[i]),
		}
	}
	return report.Table([]string{"state", "direct", "esct", "awct"}, rows) +
		fmt.Sprintf("\nMSE vs direct: ESCT %.2e, AWCT %.2e (paper: within 5%%)\n",
			r.ESCTvsDirectMSE, r.AWCTvsDirectMSE)
}

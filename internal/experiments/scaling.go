package experiments

import (
	"context"
	"fmt"

	"biasmit/internal/bitstring"
	"biasmit/internal/core"
	"biasmit/internal/correct"
	"biasmit/internal/device"
	"biasmit/internal/kernels"
	"biasmit/internal/metrics"
	"biasmit/internal/report"
)

// ScalingResult runs the mitigation stack on a synthetic 16-qubit
// machine — beyond the paper's largest device — to demonstrate that
// every technique that must scale does: AWCT profiling (O(2^m) trials),
// AIM's targeted inversions, and reduced-subspace matrix correction
// (observed outcomes only). Brute-force profiling and dense matrix
// correction are structurally impossible at this size, which is exactly
// the regime Appendix A anticipates.
type ScalingResult struct {
	Machine     string
	Benchmark   string
	Width       int
	BaselinePST float64
	SIMPST      float64
	AIMPST      float64
	ReducedPST  float64 // reduced-subspace tensored matrix on the baseline log
	Strongest   bitstring.Bits
}

// Scaling builds a 16-qubit ladder machine with 6% mean readout error
// and runs BV-11 (12-bit output) under each policy.
func Scaling(ctx context.Context, cfg Config) (ScalingResult, error) {
	dev, err := device.Synthetic(device.SyntheticSpec{
		NumQubits:        16,
		MeanReadoutError: 0.06,
		Crosstalk:        3,
		Seed:             cfg.Seed + 900,
	})
	if err != nil {
		return ScalingResult{}, err
	}
	m := cfg.machine(dev)
	// 16-qubit trajectories are heavy; fan the trial loop out. Results
	// stay deterministic for the fixed worker count.
	m.Opt.Workers = 4
	bench := kernels.BV("bv-11", bitstring.MustParse("11111111111"))
	res := ScalingResult{Machine: dev.Name, Benchmark: bench.Name, Width: bench.Width()}
	job, err := core.NewJob(bench.Circuit, m)
	if err != nil {
		return res, err
	}
	shots := cfg.shots(32000)
	target := bench.Correct[0]

	base, err := job.BaselineContext(ctx, shots, cfg.Seed+901)
	if err != nil {
		return res, err
	}
	sim, err := core.SIM4Context(ctx, job, shots, cfg.Seed+902)
	if err != nil {
		return res, err
	}
	// AWCT: 12-bit profile from 4-qubit windows (5 windows of 16 states
	// instead of 4096 preparations).
	rbms, err := job.Profiler().AWCTContext(ctx, 4, 2, cfg.shots(16000), cfg.Seed+903)
	if err != nil {
		return res, err
	}
	res.Strongest = rbms.StrongestState()
	aim, err := core.AIMContext(ctx, job, rbms, core.AIMConfig{}, shots, cfg.Seed+904)
	if err != nil {
		return res, err
	}
	cal, err := correct.LearnTensored(m, job.Plan.FinalLayout, cfg.shots(8192), cfg.Seed+905)
	if err != nil {
		return res, err
	}
	reduced, err := cal.ApplyReduced(base)
	if err != nil {
		return res, err
	}

	res.BaselinePST = metrics.PST(base.Dist(), target)
	res.SIMPST = metrics.PST(sim.Merged.Dist(), target)
	res.AIMPST = metrics.PST(aim.Merged.Dist(), target)
	res.ReducedPST = metrics.PST(reduced, target)
	return res, nil
}

// Render formats the scaling demonstration.
func (r ScalingResult) Render() string {
	return fmt.Sprintf("%s (%d-bit output) on %s; machine's strongest state %v:\n",
		r.Benchmark, r.Width, r.Machine, r.Strongest) + report.Table(
		[]string{"policy", "PST"},
		[][]string{
			{"baseline", report.Pct(r.BaselinePST)},
			{"SIM (4 modes)", report.Pct(r.SIMPST)},
			{"AIM (AWCT profile)", report.Pct(r.AIMPST)},
			{"reduced matrix correction", report.Pct(r.ReducedPST)},
		},
	)
}

package experiments

import (
	"context"
	"fmt"

	"biasmit/internal/backend"
	"biasmit/internal/bitstring"
	"biasmit/internal/core"
	"biasmit/internal/device"
	"biasmit/internal/kernels"
	"biasmit/internal/maxcut"
	"biasmit/internal/report"
	"biasmit/internal/zne"
)

// ZNEComparisonResult is the second extension experiment: zero-noise
// extrapolation (the gate-error-family mitigation) alone and composed
// with SIM (the readout-family mitigation) on the QAOA expected-cut
// observable. The two techniques address disjoint error families — §7.1
// notes SIM/AIM cannot fix gate errors, and folding does not amplify
// readout error — so composing them recovers more than either alone.
type ZNEComparisonResult struct {
	Machine string
	Graph   string
	Ideal   float64 // expected cut on an ideal machine
	Raw     float64 // noisy measurement, no mitigation
	SIMOnly float64 // SIM-corrected counts, no extrapolation
	ZNEOnly float64 // extrapolated baseline counts
	ZNEPlus float64 // extrapolated SIM-corrected counts
	MaxCut  float64 // the true optimum, for context
}

// ZNEComparison measures the qaoa-6 expected cut on melbourne under each
// mitigation combination.
func ZNEComparison(ctx context.Context, cfg Config) (ZNEComparisonResult, error) {
	pg, err := maxcut.Table3Graph("qaoa-6")
	if err != nil {
		return ZNEComparisonResult{}, err
	}
	bench := kernels.QAOA("qaoa-6", pg, 1)
	obs := func(b bitstring.Bits) float64 { return pg.Graph.CutValue(b) }
	best, _ := pg.Graph.Solve()

	dev := cfg.machine(device.IBMQMelbourne())
	res := ZNEComparisonResult{
		Machine: dev.Device.Name,
		Graph:   pg.Graph.Name,
		Ideal:   zne.Expectation(backend.RunIdeal(bench.Circuit), obs),
		MaxCut:  best,
	}
	shots := cfg.shots(16000)

	// Pin one placement for every variant.
	base, err := core.NewJob(bench.Circuit, dev)
	if err != nil {
		return res, err
	}
	layout := base.Plan.InitialLayout

	// Expected cut at fold factors 1 and 3 under baseline and SIM.
	factors := []int{1, 3}
	var rawVals, simVals []float64
	for i, factor := range factors {
		folded, err := zne.Fold(bench.Circuit, factor)
		if err != nil {
			return res, err
		}
		job, err := core.NewJobWithLayout(folded, dev, layout)
		if err != nil {
			return res, err
		}
		counts, err := job.BaselineContext(ctx, shots, cfg.Seed+920+int64(i))
		if err != nil {
			return res, err
		}
		rawVals = append(rawVals, zne.Expectation(counts.Dist(), obs))
		sim, err := core.SIM4Context(ctx, job, shots, cfg.Seed+930+int64(i))
		if err != nil {
			return res, err
		}
		simVals = append(simVals, zne.Expectation(sim.Merged.Dist(), obs))
	}
	res.Raw = rawVals[0]
	res.SIMOnly = simVals[0]
	if res.ZNEOnly, err = zne.Extrapolate([]float64{1, 3}, rawVals); err != nil {
		return res, err
	}
	if res.ZNEPlus, err = zne.Extrapolate([]float64{1, 3}, simVals); err != nil {
		return res, err
	}
	return res, nil
}

// Render formats the comparison against the ideal expected cut.
func (r ZNEComparisonResult) Render() string {
	gap := func(v float64) string { return fmt.Sprintf("%.3f", r.Ideal-v) }
	return fmt.Sprintf("expected cut of %s QAOA on %s (ideal %.3f, optimum %.0f):\n",
		r.Graph, r.Machine, r.Ideal, r.MaxCut) + report.Table(
		[]string{"mitigation", "expected cut", "gap to ideal"},
		[][]string{
			{"none", fmt.Sprintf("%.3f", r.Raw), gap(r.Raw)},
			{"SIM (readout family)", fmt.Sprintf("%.3f", r.SIMOnly), gap(r.SIMOnly)},
			{"ZNE (gate family)", fmt.Sprintf("%.3f", r.ZNEOnly), gap(r.ZNEOnly)},
			{"ZNE + SIM (both)", fmt.Sprintf("%.3f", r.ZNEPlus), gap(r.ZNEPlus)},
		},
	)
}

// Package experiments regenerates every table and figure of the paper's
// evaluation on the simulated machines. Each experiment is a pure
// function of a Config, so cmd/paperfigs, the test suite, and the
// benchmark harness all share one implementation.
//
// The per-experiment index (experiment id → workload → modules → bench
// target) lives in DESIGN.md §4.
package experiments

import (
	"fmt"
	"os"
	"sync"
	"time"

	"biasmit/internal/backend"
	"biasmit/internal/chaos"
	"biasmit/internal/core"
	"biasmit/internal/device"
	"biasmit/internal/orchestrate"
	"biasmit/internal/resilient"
)

// Config controls experiment fidelity and determinism.
type Config struct {
	// Scale multiplies the paper's published trial counts. 1.0 (the
	// default) reproduces the paper's budgets; tests and quick benches
	// use smaller values.
	Scale float64
	// Seed drives every random choice; equal seeds give equal results.
	Seed int64
	// Workers bounds how many independent circuit executions run
	// concurrently, both inside each driver (benchmark × policy cells,
	// sweep points) and inside core (SIM/AIM groups, profiler states).
	// Zero selects GOMAXPROCS; one forces sequential execution. Every
	// cell's seed is derived from the cell's position before submission,
	// so results are bit-identical across worker counts.
	Workers int
	// Runner, when set, replaces backend.RunContext for every circuit
	// execution — cmd/paperfigs plugs a chaos-wrapped retrying executor
	// in here via the -chaos-* flags. When nil and the BIASMIT_CHAOS_*
	// environment is set (the CI chaos job), a retrying executor over an
	// env-configured fault injector is used, so the entire experiment
	// suite runs — and must stay byte-identical — under injected faults.
	Runner backend.Runner
}

// workers resolves the configured parallelism.
func (c Config) workers() int {
	return orchestrate.Workers(c.Workers)
}

// envRunner builds the process-wide fault-injected runner from the
// BIASMIT_CHAOS_* environment, once. Nil when the environment sets no
// chaos, so the default path stays a direct backend call.
var envRunner = sync.OnceValue(func() backend.Runner {
	plan, err := chaos.FromEnv()
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: ignoring malformed chaos environment: %v\n", err)
		return nil
	}
	if !plan.Enabled() {
		return nil
	}
	// Generous retries and token backoff: the chaos CI job injects high
	// fault rates and only cares that results survive unchanged, not
	// about realistic pacing. SliceShots stays 0: slicing repartitions
	// the per-trial random streams, and every experiment assertion is
	// calibrated against the unsliced stream at the canonical seed —
	// retries must replay the identical call, not a resampled one.
	exec := resilient.New(plan.Wrap(backend.RunContext), resilient.Policy{
		MaxAttempts: 40,
		BaseDelay:   50 * time.Microsecond,
		MaxDelay:    time.Millisecond,
	})
	return exec.Run
})

// runner resolves the execution path for this config.
func (c Config) runner() backend.Runner {
	if c.Runner != nil {
		return c.Runner
	}
	if r := envRunner(); r != nil {
		return r
	}
	return backend.RunContext
}

// scale returns the effective scale factor.
func (c Config) scale() float64 {
	if c.Scale <= 0 {
		return 1.0
	}
	return c.Scale
}

// shots converts one of the paper's trial counts into this run's budget,
// with a floor that keeps split-mode policies statistically meaningful.
func (c Config) shots(paper int) int {
	s := int(float64(paper) * c.scale())
	if s < 400 {
		s = 400
	}
	return s
}

// machine builds the fully noisy machine model for a device, carrying
// the config's job-level parallelism.
func (c Config) machine(dev *device.Device) *core.Machine {
	m := core.NewMachine(dev)
	m.Workers = c.Workers
	m.Run = c.runner()
	return m
}

// readoutOnly builds a machine with only readout noise, used by the
// characterization experiments that isolate measurement error.
func (c Config) readoutOnly(dev *device.Device) *core.Machine {
	m := core.NewMachine(dev)
	m.Opt = backend.Options{NoGateNoise: true, NoDecay: true}
	m.Workers = c.Workers
	m.Run = c.runner()
	return m
}

// identityLayout returns [0, 1, …, n).
func identityLayout(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

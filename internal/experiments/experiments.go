// Package experiments regenerates every table and figure of the paper's
// evaluation on the simulated machines. Each experiment is a pure
// function of a Config, so cmd/paperfigs, the test suite, and the
// benchmark harness all share one implementation.
//
// The per-experiment index (experiment id → workload → modules → bench
// target) lives in DESIGN.md §4.
package experiments

import (
	"biasmit/internal/backend"
	"biasmit/internal/core"
	"biasmit/internal/device"
	"biasmit/internal/orchestrate"
)

// Config controls experiment fidelity and determinism.
type Config struct {
	// Scale multiplies the paper's published trial counts. 1.0 (the
	// default) reproduces the paper's budgets; tests and quick benches
	// use smaller values.
	Scale float64
	// Seed drives every random choice; equal seeds give equal results.
	Seed int64
	// Workers bounds how many independent circuit executions run
	// concurrently, both inside each driver (benchmark × policy cells,
	// sweep points) and inside core (SIM/AIM groups, profiler states).
	// Zero selects GOMAXPROCS; one forces sequential execution. Every
	// cell's seed is derived from the cell's position before submission,
	// so results are bit-identical across worker counts.
	Workers int
}

// workers resolves the configured parallelism.
func (c Config) workers() int {
	return orchestrate.Workers(c.Workers)
}

// scale returns the effective scale factor.
func (c Config) scale() float64 {
	if c.Scale <= 0 {
		return 1.0
	}
	return c.Scale
}

// shots converts one of the paper's trial counts into this run's budget,
// with a floor that keeps split-mode policies statistically meaningful.
func (c Config) shots(paper int) int {
	s := int(float64(paper) * c.scale())
	if s < 400 {
		s = 400
	}
	return s
}

// machine builds the fully noisy machine model for a device, carrying
// the config's job-level parallelism.
func (c Config) machine(dev *device.Device) *core.Machine {
	m := core.NewMachine(dev)
	m.Workers = c.Workers
	return m
}

// readoutOnly builds a machine with only readout noise, used by the
// characterization experiments that isolate measurement error.
func (c Config) readoutOnly(dev *device.Device) *core.Machine {
	m := core.NewMachine(dev)
	m.Opt = backend.Options{NoGateNoise: true, NoDecay: true}
	m.Workers = c.Workers
	return m
}

// identityLayout returns [0, 1, …, n).
func identityLayout(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

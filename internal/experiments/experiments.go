// Package experiments regenerates every table and figure of the paper's
// evaluation on the simulated machines. Each experiment is a pure
// function of a Config, so cmd/paperfigs, the test suite, and the
// benchmark harness all share one implementation.
//
// The per-experiment index (experiment id → workload → modules → bench
// target) lives in DESIGN.md §4.
package experiments

import (
	"biasmit/internal/backend"
	"biasmit/internal/core"
	"biasmit/internal/device"
)

// Config controls experiment fidelity and determinism.
type Config struct {
	// Scale multiplies the paper's published trial counts. 1.0 (the
	// default) reproduces the paper's budgets; tests and quick benches
	// use smaller values.
	Scale float64
	// Seed drives every random choice; equal seeds give equal results.
	Seed int64
}

// scale returns the effective scale factor.
func (c Config) scale() float64 {
	if c.Scale <= 0 {
		return 1.0
	}
	return c.Scale
}

// shots converts one of the paper's trial counts into this run's budget,
// with a floor that keeps split-mode policies statistically meaningful.
func (c Config) shots(paper int) int {
	s := int(float64(paper) * c.scale())
	if s < 400 {
		s = 400
	}
	return s
}

// machine builds the fully noisy machine model for a device.
func machine(dev *device.Device) *core.Machine {
	return core.NewMachine(dev)
}

// readoutOnly builds a machine with only readout noise, used by the
// characterization experiments that isolate measurement error.
func readoutOnly(dev *device.Device) *core.Machine {
	m := core.NewMachine(dev)
	m.Opt = backend.Options{NoGateNoise: true, NoDecay: true}
	return m
}

// identityLayout returns [0, 1, …, n).
func identityLayout(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

package experiments

import (
	"fmt"

	"biasmit/internal/core"
	"biasmit/internal/device"
	"biasmit/internal/metrics"
	"biasmit/internal/report"
)

// RepeatabilityResult reproduces the paper's §6.1 claim: ibmqx4's
// arbitrary measurement bias is repeatable across calibration cycles
// (the paper observed 100 cycles over 35 days). Each cycle jitters the
// calibrated parameters; the *ordering* of basis-state strengths must
// stay stable for AIM's one-time profiling to remain useful.
type RepeatabilityResult struct {
	Machine string
	Cycles  int
	// SpearmanToNominal holds, per measured cycle, the rank correlation
	// of that cycle's measured RBMS with the nominal machine's exact
	// profile.
	SpearmanToNominal []float64
	MinCorrelation    float64
	MeanCorrelation   float64
	// StrongestStable counts cycles whose measured strongest state is
	// within the nominal top-4.
	StrongestStable int
}

// Repeatability measures the ibmqx4 RBMS with ESCT in several
// calibration cycles and compares the orderings.
func Repeatability(cfg Config) (RepeatabilityResult, error) {
	base := device.IBMQX4()
	nominal := base.ReadoutModel().ExactBMS()
	nominalRBMS, err := core.NewRBMS(5, nominal)
	if err != nil {
		return RepeatabilityResult{}, err
	}
	nominalTop := map[string]bool{}
	for _, s := range topStates(nominalRBMS, 4) {
		nominalTop[s] = true
	}

	// Sample a spread of cycles; the paper used 100 over 35 days. Full
	// scale measures 20 cycles with ESCT, which is statistically
	// equivalent for rank stability.
	cycles := int(20 * cfg.scale())
	if cycles < 5 {
		cycles = 5
	}
	res := RepeatabilityResult{Machine: base.Name, Cycles: cycles, MinCorrelation: 1}
	shots := cfg.shots(64000)
	for c := 0; c < cycles; c++ {
		dev := base.Calibrate(c)
		prof := &core.Profiler{Machine: machine(dev), Layout: identityLayout(5)}
		esct, err := prof.ESCT(shots, cfg.Seed+900+int64(c))
		if err != nil {
			return res, err
		}
		rho, err := metrics.Spearman(nominal, esct.Strength)
		if err != nil {
			return res, err
		}
		res.SpearmanToNominal = append(res.SpearmanToNominal, rho)
		res.MeanCorrelation += rho
		if rho < res.MinCorrelation {
			res.MinCorrelation = rho
		}
		if nominalTop[esct.StrongestState().String()] {
			res.StrongestStable++
		}
	}
	res.MeanCorrelation /= float64(cycles)
	return res, nil
}

func topStates(r core.RBMS, k int) []string {
	type pair struct {
		s string
		v float64
	}
	pairs := make([]pair, 0, len(r.Strength))
	for i, v := range r.Strength {
		pairs = append(pairs, pair{fmt.Sprintf("%0*b", r.Width, i), v})
	}
	for i := 0; i < k && i < len(pairs); i++ {
		for j := i + 1; j < len(pairs); j++ {
			if pairs[j].v > pairs[i].v {
				pairs[i], pairs[j] = pairs[j], pairs[i]
			}
		}
	}
	out := make([]string, 0, k)
	for i := 0; i < k && i < len(pairs); i++ {
		out = append(out, pairs[i].s)
	}
	return out
}

// Render summarizes the per-cycle correlations.
func (r RepeatabilityResult) Render() string {
	rows := make([][]string, len(r.SpearmanToNominal))
	for i, rho := range r.SpearmanToNominal {
		rows[i] = []string{fmt.Sprintf("cycle %d", i), report.F(rho)}
	}
	return report.Table([]string{"calibration cycle", "rank corr vs nominal"}, rows) +
		fmt.Sprintf("\nmean %.3f, min %.3f over %d cycles; strongest state in nominal top-4: %d/%d\n(paper §6.1: bias repeatable over 100 cycles / 35 days)\n",
			r.MeanCorrelation, r.MinCorrelation, r.Cycles, r.StrongestStable, r.Cycles)
}

package experiments

import (
	"context"
	"fmt"

	"biasmit/internal/core"
	"biasmit/internal/device"
	"biasmit/internal/metrics"
	"biasmit/internal/orchestrate"
	"biasmit/internal/report"
)

// RepeatabilityResult reproduces the paper's §6.1 claim: ibmqx4's
// arbitrary measurement bias is repeatable across calibration cycles
// (the paper observed 100 cycles over 35 days). Each cycle jitters the
// calibrated parameters; the *ordering* of basis-state strengths must
// stay stable for AIM's one-time profiling to remain useful.
type RepeatabilityResult struct {
	Machine string
	Cycles  int
	// SpearmanToNominal holds, per measured cycle, the rank correlation
	// of that cycle's measured RBMS with the nominal machine's exact
	// profile.
	SpearmanToNominal []float64
	MinCorrelation    float64
	MeanCorrelation   float64
	// StrongestStable counts cycles whose measured strongest state is
	// within the nominal top-4.
	StrongestStable int
}

// Repeatability measures the ibmqx4 RBMS with ESCT in several
// calibration cycles and compares the orderings. The cycles are
// independent characterizations and run on cfg.Workers goroutines; each
// cycle's seed depends only on its index, so the statistics are
// bit-identical at every worker count.
func Repeatability(ctx context.Context, cfg Config) (RepeatabilityResult, error) {
	base := device.IBMQX4()
	nominal := base.ReadoutModel().ExactBMS()
	nominalRBMS, err := core.NewRBMS(5, nominal)
	if err != nil {
		return RepeatabilityResult{}, err
	}
	nominalTop := map[string]bool{}
	for _, s := range topStates(nominalRBMS, 4) {
		nominalTop[s] = true
	}

	// Sample a spread of cycles; the paper used 100 over 35 days. Full
	// scale measures 20 cycles with ESCT, which is statistically
	// equivalent for rank stability.
	cycles := int(20 * cfg.scale())
	if cycles < 5 {
		cycles = 5
	}
	res := RepeatabilityResult{Machine: base.Name, Cycles: cycles, MinCorrelation: 1}
	shots := cfg.shots(64000)
	type cycleResult struct {
		rho       float64
		strongest string
	}
	cycleIdx := make([]int, cycles)
	for c := range cycleIdx {
		cycleIdx[c] = c
	}
	measured, err := orchestrate.Map(ctx, cfg.workers(), cycleIdx,
		func(ctx context.Context, _, c int) (cycleResult, error) {
			dev := base.Calibrate(c)
			prof := &core.Profiler{Machine: cfg.machine(dev), Layout: identityLayout(5)}
			esct, err := prof.ESCTContext(ctx, shots, cfg.Seed+900+int64(c))
			if err != nil {
				return cycleResult{}, err
			}
			rho, err := metrics.Spearman(nominal, esct.Strength)
			if err != nil {
				return cycleResult{}, err
			}
			return cycleResult{rho: rho, strongest: esct.StrongestState().String()}, nil
		})
	if err != nil {
		return res, err
	}
	for _, cr := range measured {
		res.SpearmanToNominal = append(res.SpearmanToNominal, cr.rho)
		res.MeanCorrelation += cr.rho
		if cr.rho < res.MinCorrelation {
			res.MinCorrelation = cr.rho
		}
		if nominalTop[cr.strongest] {
			res.StrongestStable++
		}
	}
	res.MeanCorrelation /= float64(cycles)
	return res, nil
}

func topStates(r core.RBMS, k int) []string {
	type pair struct {
		s string
		v float64
	}
	pairs := make([]pair, 0, len(r.Strength))
	for i, v := range r.Strength {
		pairs = append(pairs, pair{fmt.Sprintf("%0*b", r.Width, i), v})
	}
	for i := 0; i < k && i < len(pairs); i++ {
		for j := i + 1; j < len(pairs); j++ {
			if pairs[j].v > pairs[i].v {
				pairs[i], pairs[j] = pairs[j], pairs[i]
			}
		}
	}
	out := make([]string, 0, k)
	for i := 0; i < k && i < len(pairs); i++ {
		out = append(out, pairs[i].s)
	}
	return out
}

// Render summarizes the per-cycle correlations.
func (r RepeatabilityResult) Render() string {
	rows := make([][]string, len(r.SpearmanToNominal))
	for i, rho := range r.SpearmanToNominal {
		rows[i] = []string{fmt.Sprintf("cycle %d", i), report.F(rho)}
	}
	return report.Table([]string{"calibration cycle", "rank corr vs nominal"}, rows) +
		fmt.Sprintf("\nmean %.3f, min %.3f over %d cycles; strongest state in nominal top-4: %d/%d\n(paper §6.1: bias repeatable over 100 cycles / 35 days)\n",
			r.MeanCorrelation, r.MinCorrelation, r.Cycles, r.StrongestStable, r.Cycles)
}

package experiments

import (
	"context"
	"fmt"

	"biasmit/internal/bitstring"
	"biasmit/internal/core"
	"biasmit/internal/correct"
	"biasmit/internal/device"
	"biasmit/internal/kernels"
	"biasmit/internal/metrics"
	"biasmit/internal/report"
)

// MitigationComparisonRow scores one policy on one workload.
type MitigationComparisonRow struct {
	Policy string
	PST    float64
	IST    float64
	ROCA   int
}

// MitigationComparisonResult is the extension experiment: the paper's
// Invert-and-Measure policies side by side with confusion-matrix readout
// mitigation (the technique that became standard practice after
// publication), on the same workload, machine, and trial budget.
//
// The comparison highlights the structural difference: matrix methods
// post-process the estimated distribution (excellent when the channel is
// stationary and well-sampled, but blind to drift and unable to raise
// the information content of individual trials), while SIM/AIM change
// which physical state gets measured. The two compose: matrix correction
// can be applied on top of a SIM log.
type MitigationComparisonResult struct {
	Machine   string
	Benchmark string
	Target    bitstring.Bits
	Rows      []MitigationComparisonRow
}

// MitigationComparison runs BV-4B (expected output 11111 — the paper's
// most vulnerable state) on ibmqx4 under: baseline, SIM, AIM, tensored
// matrix mitigation, full matrix mitigation, and SIM composed with
// tensored mitigation.
func MitigationComparison(ctx context.Context, cfg Config) (MitigationComparisonResult, error) {
	dev := device.IBMQX4()
	m := cfg.machine(dev)
	bench := kernels.BV("bv-4B", bitstring.MustParse("1111"))
	res := MitigationComparisonResult{
		Machine:   dev.Name,
		Benchmark: bench.Name,
		Target:    bench.Correct[0],
	}
	job, err := core.NewJob(bench.Circuit, m)
	if err != nil {
		return res, err
	}
	layout := job.Plan.FinalLayout
	shots := cfg.shots(32000)

	baseline, err := job.BaselineContext(ctx, shots, cfg.Seed+700)
	if err != nil {
		return res, err
	}
	sim, err := core.SIM4Context(ctx, job, shots, cfg.Seed+701)
	if err != nil {
		return res, err
	}
	rbms, err := job.Profiler().BruteForceContext(ctx, cfg.shots(4096), cfg.Seed+702)
	if err != nil {
		return res, err
	}
	aim, err := core.AIMContext(ctx, job, rbms, core.AIMConfig{}, shots, cfg.Seed+703)
	if err != nil {
		return res, err
	}
	tensored, err := correct.LearnTensored(m, layout, cfg.shots(8192), cfg.Seed+704)
	if err != nil {
		return res, err
	}
	full, err := correct.LearnFull(m, layout, cfg.shots(4096), cfg.Seed+705)
	if err != nil {
		return res, err
	}

	tensoredDist, err := tensored.Apply(baseline)
	if err != nil {
		return res, err
	}
	fullDist, err := full.Apply(baseline)
	if err != nil {
		return res, err
	}
	simTensoredDist, err := tensored.Apply(sim.Merged)
	if err != nil {
		return res, err
	}

	for _, p := range []struct {
		name string
		pst  float64
		ist  float64
		roca int
	}{
		{"baseline", metrics.PST(baseline.Dist(), res.Target), metrics.IST(baseline.Dist(), res.Target), metrics.ROCA(baseline.Dist(), res.Target)},
		{"SIM", metrics.PST(sim.Merged.Dist(), res.Target), metrics.IST(sim.Merged.Dist(), res.Target), metrics.ROCA(sim.Merged.Dist(), res.Target)},
		{"AIM", metrics.PST(aim.Merged.Dist(), res.Target), metrics.IST(aim.Merged.Dist(), res.Target), metrics.ROCA(aim.Merged.Dist(), res.Target)},
		{"matrix (tensored)", metrics.PST(tensoredDist, res.Target), metrics.IST(tensoredDist, res.Target), metrics.ROCA(tensoredDist, res.Target)},
		{"matrix (full)", metrics.PST(fullDist, res.Target), metrics.IST(fullDist, res.Target), metrics.ROCA(fullDist, res.Target)},
		{"SIM + tensored", metrics.PST(simTensoredDist, res.Target), metrics.IST(simTensoredDist, res.Target), metrics.ROCA(simTensoredDist, res.Target)},
	} {
		res.Rows = append(res.Rows, MitigationComparisonRow{
			Policy: p.name, PST: p.pst, IST: p.ist, ROCA: p.roca,
		})
	}
	return res, nil
}

// Render formats the comparison.
func (r MitigationComparisonResult) Render() string {
	rows := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		rows[i] = []string{
			row.Policy, report.Pct(row.PST), report.F(row.IST), fmt.Sprint(row.ROCA),
		}
	}
	return fmt.Sprintf("%s on %s, target %v:\n", r.Benchmark, r.Machine, r.Target) +
		report.Table([]string{"policy", "PST", "IST", "ROCA"}, rows)
}

package client

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"biasmit/internal/api"
	"biasmit/internal/overload"
)

const charBody = `{"api_version":"v1","profile":{"machine":"ibmqx4","qubits":4,"method":"brute"}}`

// TestDeadlineHeaderForwarded: a context deadline rides to the daemon
// as X-Request-Deadline so the server can shed doomed work early.
func TestDeadlineHeaderForwarded(t *testing.T) {
	var got atomic.Value
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got.Store(r.Header.Get(overload.DeadlineHeader))
		w.Write([]byte(`{"api_version":"v1","profiles":[]}`))
	}))
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if _, err := New(ts.URL).Profiles(ctx); err != nil {
		t.Fatal(err)
	}
	h, _ := got.Load().(string)
	if h == "" {
		t.Fatal("request carried no deadline header")
	}
	dl, err := overload.ParseDeadline(h)
	if err != nil {
		t.Fatalf("forwarded deadline %q does not parse: %v", h, err)
	}
	if until := time.Until(dl); until < 50*time.Second || until > time.Minute {
		t.Fatalf("forwarded deadline %v out, want ~1m", until)
	}
}

// TestNoDeadlineHeaderWithoutDeadline: a background context adds no
// header — the server default applies.
func TestNoDeadlineHeaderWithoutDeadline(t *testing.T) {
	var got atomic.Value
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got.Store(r.Header.Get(overload.DeadlineHeader))
		w.Write([]byte(`{"api_version":"v1","profiles":[]}`))
	}))
	defer ts.Close()
	if _, err := New(ts.URL).Profiles(context.Background()); err != nil {
		t.Fatal(err)
	}
	if h, _ := got.Load().(string); h != "" {
		t.Fatalf("unexpected deadline header %q", h)
	}
}

// TestHedgedCharacterizeWinsTail: after warming the p95 tracker with
// fast responses, one request that stalls triggers a hedge whose fast
// response wins well before the stalled primary would have returned.
func TestHedgedCharacterizeWinsTail(t *testing.T) {
	var calls atomic.Int64
	stall := make(chan struct{}) // held open for the whole test
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := calls.Add(1)
		if n == minHedgeSamples+1 {
			// The tail-latency straggler: park until the client gives up
			// on this attempt.
			select {
			case <-stall:
			case <-r.Context().Done():
				return
			}
		}
		w.Write([]byte(charBody))
	}))
	defer ts.Close()
	defer close(stall)

	cl := New(ts.URL, WithHedgedReads(), WithRetryBudget(0.1, 10))
	req := &api.CharacterizeRequest{Machine: "ibmqx4"}
	for i := 0; i < minHedgeSamples; i++ {
		if _, err := cl.Characterize(context.Background(), req); err != nil {
			t.Fatal(err)
		}
	}

	start := time.Now()
	resp, err := cl.Characterize(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("hedged call took %v — hedge never fired", elapsed)
	}
	if resp.Profile.Machine != "ibmqx4" {
		t.Fatalf("bad hedged response: %+v", resp)
	}
	if n := calls.Load(); n != minHedgeSamples+2 {
		t.Fatalf("%d requests total, want %d (warmup + straggler + hedge)", n, minHedgeSamples+2)
	}
}

// TestForceCharacterizeNeverHedges: a forced re-characterization is not
// idempotent in spirit (its point is a fresh run), so it is exempt from
// hedging no matter how slow.
func TestForceCharacterizeNeverHedges(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Write([]byte(charBody))
	}))
	defer ts.Close()

	cl := New(ts.URL, WithHedgedReads())
	for i := 0; i < minHedgeSamples; i++ {
		if _, err := cl.Characterize(context.Background(), &api.CharacterizeRequest{Machine: "ibmqx4"}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := cl.Characterize(context.Background(), &api.CharacterizeRequest{Machine: "ibmqx4", Force: true}); err != nil {
		t.Fatal(err)
	}
	if n := calls.Load(); n != minHedgeSamples+1 {
		t.Fatalf("%d requests, want exactly %d (no hedge for Force)", n, minHedgeSamples+1)
	}
}

// TestLatencyTrackerP95 pins the tracker's arithmetic.
func TestLatencyTrackerP95(t *testing.T) {
	var lt latencyTracker
	if _, ok := lt.p95(); ok {
		t.Fatal("empty tracker reported a p95")
	}
	for i := 1; i <= 20; i++ {
		lt.observe(time.Duration(i) * time.Millisecond)
	}
	p, ok := lt.p95()
	if !ok {
		t.Fatal("warmed tracker reported no p95")
	}
	if p < 18*time.Millisecond || p > 20*time.Millisecond {
		t.Fatalf("p95 = %v over 1..20ms, want 19ms±1", p)
	}
}

package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"biasmit/internal/api"
	"biasmit/internal/server"
)

// testDaemon runs the real server in-process; the client exercises the
// same handler stack CI's smoke binary hits over localhost.
func testDaemon(t *testing.T) *Client {
	t.Helper()
	s := server.New(server.Config{
		Workers:      2,
		MaxJobs:      2,
		ProfileShots: 64,
		MaxShots:     1 << 16,
		ProfileTTL:   time.Hour,
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return New(ts.URL)
}

func TestMitigateRoundTrip(t *testing.T) {
	cl := testDaemon(t)
	resp, err := cl.Mitigate(context.Background(), &api.MitigateRequest{
		Machine: "ibmqx4", Policy: "baseline", Benchmark: "bv-4A", Shots: 256, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.APIVersion != api.Version {
		t.Fatalf("api_version %q, want %q", resp.APIVersion, api.Version)
	}
	if resp.Machine != "ibmqx4" || len(resp.Outcomes) == 0 {
		t.Fatalf("incomplete response: %+v", resp)
	}
}

func TestHealthzAndProfilesAndMetrics(t *testing.T) {
	cl := testDaemon(t)
	ctx := context.Background()
	h, err := cl.Healthz(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" {
		t.Fatalf("health status %q, want ok", h.Status)
	}
	if _, err := cl.Characterize(ctx, &api.CharacterizeRequest{Machine: "ibmqx4"}); err != nil {
		t.Fatal(err)
	}
	profs, err := cl.Profiles(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(profs.Profiles) != 1 || profs.Profiles[0].Machine != "ibmqx4" {
		t.Fatalf("profiles %+v, want one ibmqx4 entry", profs.Profiles)
	}
	metrics, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(metrics, "biasmitd_requests_total") {
		t.Fatalf("metrics exposition missing request counter:\n%s", metrics)
	}
}

// TestTypedErrorRoundTrip pins the error contract: a budget violation
// comes back as *api.Error with the stable code and the HTTP status
// restored from the transport.
func TestTypedErrorRoundTrip(t *testing.T) {
	cl := testDaemon(t)
	_, err := cl.Mitigate(context.Background(), &api.MitigateRequest{
		Machine: "ibmqx4", Policy: "baseline", Benchmark: "bv-4A", Shots: 1 << 41,
	})
	var ae *api.Error
	if !errors.As(err, &ae) {
		t.Fatalf("error %v (%T), want *api.Error", err, err)
	}
	if ae.Code != api.CodeBadBudget || ae.Status != http.StatusBadRequest {
		t.Fatalf("code=%q status=%d, want bad_budget/400", ae.Code, ae.Status)
	}
}

// TestBreakerRetryHonorsRetryAfter fakes a breaker_open rejection
// followed by success and asserts the configured retry waits the
// advertised cooldown before the second attempt.
func TestBreakerRetryHonorsRetryAfter(t *testing.T) {
	var calls int
	var gap time.Duration
	var first time.Time
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		if calls == 1 {
			first = time.Now()
			w.Header().Set("Retry-After", "1")
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte(`{"api_version":"v1","error":{"code":"breaker_open","message":"machine dark"}}`))
			return
		}
		gap = time.Since(first)
		w.Write([]byte(`{"api_version":"v1","status":"ok","uptime_ms":1,"profiles_cached":0,"profiles_stale":0,"machines":null,"profiles":[]}`))
	}))
	defer ts.Close()

	cl := New(ts.URL, WithBreakerRetries(2))
	if _, err := cl.Profiles(context.Background()); err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Fatalf("%d calls, want 2", calls)
	}
	if gap < 900*time.Millisecond {
		t.Fatalf("retried after %v, want ≥ ~1s (Retry-After)", gap)
	}
}

// TestBreakerRetryBoundedByContext: the cooldown sleep must end when the
// caller's context does.
func TestBreakerRetryBoundedByContext(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "30")
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte(`{"api_version":"v1","error":{"code":"breaker_open","message":"machine dark"}}`))
	}))
	defer ts.Close()

	cl := New(ts.URL, WithBreakerRetries(3))
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := cl.Profiles(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error %v, want context.DeadlineExceeded", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("retry loop ignored the context deadline")
	}
}

// TestVersionMismatchRejected: a server speaking a different protocol
// version is an error, not a silent misparse.
func TestVersionMismatchRejected(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"api_version":"v999","profiles":[]}`))
	}))
	defer ts.Close()
	_, err := New(ts.URL).Profiles(context.Background())
	if err == nil || !strings.Contains(err.Error(), "v999") {
		t.Fatalf("error %v, want version mismatch", err)
	}
}

func TestUntypedErrorBody(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "plain text panic page", http.StatusBadGateway)
	}))
	defer ts.Close()
	_, err := New(ts.URL).Profiles(context.Background())
	if err == nil || !strings.Contains(err.Error(), "502") {
		t.Fatalf("error %v, want untyped 502 report", err)
	}
}

package client

import (
	"context"
	"fmt"
	"net/url"
	"time"

	"biasmit/internal/api"
)

// SubmitJob runs POST /v1/jobs: enqueue a mitigation or
// characterization for asynchronous execution. The returned job is
// freshly queued; poll it with Job, or block with WaitJob.
func (c *Client) SubmitJob(ctx context.Context, req *api.JobSubmitRequest) (*api.JobResponse, error) {
	out := new(api.JobResponse)
	if err := c.call(ctx, "POST", "/v1/jobs", req, out); err != nil {
		return nil, err
	}
	return out, nil
}

// Job runs GET /v1/jobs/{id}. A positive wait long-polls: the server
// holds the request up to that long for the job to reach a terminal
// state, and returns its current state either way.
func (c *Client) Job(ctx context.Context, id string, wait time.Duration) (*api.JobResponse, error) {
	path := "/v1/jobs/" + url.PathEscape(id)
	if wait > 0 {
		path += "?wait=" + url.QueryEscape(wait.String())
	}
	out := new(api.JobResponse)
	if err := c.call(ctx, "GET", path, nil, out); err != nil {
		return nil, err
	}
	return out, nil
}

// Jobs runs GET /v1/jobs, filtered by state and tenant when non-empty.
func (c *Client) Jobs(ctx context.Context, state, tenant string) (*api.JobListResponse, error) {
	q := url.Values{}
	if state != "" {
		q.Set("state", state)
	}
	if tenant != "" {
		q.Set("tenant", tenant)
	}
	path := "/v1/jobs"
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	out := new(api.JobListResponse)
	if err := c.call(ctx, "GET", path, nil, out); err != nil {
		return nil, err
	}
	return out, nil
}

// JobsPage runs GET /v1/jobs with pagination, filtered by state and
// tenant when non-empty. A zero limit takes the server default; cursor
// is the NextCursor of the previous page (empty for the first).
// Iteration is stable under concurrent submissions: new job IDs sort
// after every cursor already handed out.
func (c *Client) JobsPage(ctx context.Context, state, tenant string, limit int, cursor string) (*api.JobListResponse, error) {
	extra := url.Values{}
	if state != "" {
		extra.Set("state", state)
	}
	if tenant != "" {
		extra.Set("tenant", tenant)
	}
	out := new(api.JobListResponse)
	if err := c.call(ctx, "GET", "/v1/jobs"+pageQuery(limit, cursor, extra), nil, out); err != nil {
		return nil, err
	}
	return out, nil
}

// CancelJob runs DELETE /v1/jobs/{id}. Queued jobs are cancelled
// immediately; running jobs wind down asynchronously (the returned
// state may still be "running" with CancelRequested set).
func (c *Client) CancelJob(ctx context.Context, id string) (*api.JobResponse, error) {
	out := new(api.JobResponse)
	if err := c.call(ctx, "DELETE", "/v1/jobs/"+url.PathEscape(id), nil, out); err != nil {
		return nil, err
	}
	return out, nil
}

// jobTerminal mirrors the server's terminal-state set.
func jobTerminal(state string) bool {
	return state == api.JobStateDone || state == api.JobStateFailed || state == api.JobStateCancelled
}

// WaitJob long-polls a job until it reaches a terminal state or ctx
// ends, and returns its final snapshot (including the result for a done
// job). A failed job still returns nil error — inspect Job.Error; the
// error return reports transport or context problems only.
func (c *Client) WaitJob(ctx context.Context, id string) (*api.JobResponse, error) {
	const poll = 15 * time.Second
	for {
		resp, err := c.Job(ctx, id, poll)
		if err != nil {
			return nil, err
		}
		if jobTerminal(resp.Job.State) {
			return resp, nil
		}
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("client: waiting for job %s: %w", id, ctx.Err())
		default:
		}
	}
}

// Package client is the typed Go client of the biasmitd HTTP API. It
// speaks the wire contract defined in internal/api — the same structs
// the server serializes — so request and response shapes are checked at
// compile time on both sides.
//
// Failures surface as *api.Error: the typed envelope the daemon writes,
// restored field-for-field (code, message, HTTP status, and the
// Retry-After cooldown from the header). Callers branch on the stable
// codes, never on message text:
//
//	resp, err := cl.Mitigate(ctx, req)
//	var ae *api.Error
//	if errors.As(err, &ae) && ae.Code == api.CodeBreakerOpen { ... }
//
// The client optionally retries breaker_open rejections itself
// (WithBreakerRetries), sleeping out the server's advertised cooldown
// under the caller's context deadline — the polite way to ride out a
// machine's dark window.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"biasmit/internal/api"
	"biasmit/internal/obs"
	"biasmit/internal/overload"
)

// WithTraceID attaches a trace ID to ctx so every request issued under
// it carries the X-Trace-Id header and the daemon adopts the caller's
// ID instead of minting one. An empty or malformed id mints a fresh
// ULID. The effective ID is returned alongside the derived context so
// callers can log it before the first round trip.
func WithTraceID(ctx context.Context, id string) (context.Context, string) {
	tr := obs.NewTrace(id, nil)
	return obs.WithTrace(ctx, tr), tr.ID()
}

// hedgeKey marks a context as belonging to a hedge attempt; once()
// translates it into the X-Hedged header so the daemon tags the span
// instead of treating the race as an independent request.
type hedgeKey struct{}

func markHedge(ctx context.Context) context.Context {
	return context.WithValue(ctx, hedgeKey{}, true)
}

func isHedge(ctx context.Context) bool {
	v, _ := ctx.Value(hedgeKey{}).(bool)
	return v
}

// Client talks to one biasmitd instance. Construct with New; safe for
// concurrent use (it shares one underlying http.Client).
type Client struct {
	base           string
	http           *http.Client
	apiKey         string
	breakerRetries int
	retryCap       time.Duration

	// budget, when set, caps the client's own extra traffic — breaker
	// retries and hedges — to a fraction of its fresh requests, so a
	// fleet of clients cannot amplify a brownout into a storm.
	budget *overload.Budget
	// hedge enables tail-latency hedging of idempotent characterization
	// reads; lat tracks their latency for the p95 hedge delay.
	hedge bool
	lat   latencyTracker
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying http.Client (custom
// transports, test doubles). The default has no client-side timeout;
// use context deadlines per call.
func WithHTTPClient(h *http.Client) Option {
	return func(c *Client) { c.http = h }
}

// WithAPIKey sends key as the X-API-Key header on every request. The
// daemon uses it as the tenant identity for async-job fairness and
// quotas; requests without one share the "anon" tenant.
func WithAPIKey(key string) Option {
	return func(c *Client) { c.apiKey = key }
}

// WithBreakerRetries makes the client retry a request up to n times when
// the daemon rejects it with breaker_open, sleeping the Retry-After
// cooldown (capped at 30s, and always bounded by the call's context)
// between attempts. Zero — the default — surfaces the rejection
// immediately.
func WithBreakerRetries(n int) Option {
	return func(c *Client) { c.breakerRetries = n }
}

// WithRetryBudget caps the client's retries and hedges at ratio times
// its fresh request rate (burst tokens of headroom; zeros pick the 0.1
// ratio / 10 burst defaults). When the bucket runs dry, retries stop
// and the last error surfaces — the client-side half of the server's
// retry-budget defence.
func WithRetryBudget(ratio, burst float64) Option {
	return func(c *Client) { c.budget = overload.NewBudget(ratio, burst) }
}

// WithHedgedReads enables tail-latency hedging for idempotent
// characterization reads (never Force re-characterizations): once a
// call outlives the p95 of recent characterize latencies, a second
// identical request races it and the first response wins. Hedges spend
// the retry budget when one is configured.
func WithHedgedReads() Option {
	return func(c *Client) { c.hedge = true }
}

// New returns a client for the daemon at base, e.g.
// "http://127.0.0.1:8080". A scheme-less base is assumed http.
func New(base string, opts ...Option) *Client {
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	c := &Client{
		base:     strings.TrimRight(base, "/"),
		http:     &http.Client{},
		retryCap: 30 * time.Second,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Mitigate runs POST /v1/mitigate: one benchmark under one measurement
// policy on one machine. Against a server with the result cache on
// (the daemon default), the response's CacheHit and Coalesced fields
// say whether it replays a stored computation or rode an identical
// in-flight one; the rest of the body is byte-identical to what a
// fresh execution returns, so callers need not branch on either.
func (c *Client) Mitigate(ctx context.Context, req *api.MitigateRequest) (*api.MitigateResponse, error) {
	out := new(api.MitigateResponse)
	if err := c.call(ctx, http.MethodPost, "/v1/mitigate", req, out); err != nil {
		return nil, err
	}
	return out, nil
}

// Characterize runs POST /v1/characterize: learn (or fetch the cached)
// RBMS profile of a machine. With WithHedgedReads, a non-Force call
// that outlives the p95 of recent characterize latencies is raced by a
// second identical request (the server deduplicates concurrent
// characterizations of one key, so the hedge costs one HTTP round
// trip, not a second quantum run).
func (c *Client) Characterize(ctx context.Context, req *api.CharacterizeRequest) (*api.CharacterizeResponse, error) {
	if c.hedge && !req.Force {
		return c.hedgedCharacterize(ctx, req)
	}
	started := time.Now()
	out := new(api.CharacterizeResponse)
	if err := c.call(ctx, http.MethodPost, "/v1/characterize", req, out); err != nil {
		return nil, err
	}
	c.lat.observe(time.Since(started))
	return out, nil
}

// hedgedCharacterize races a second request after the p95 delay,
// first response wins. Until enough latency samples exist the call is
// a plain (sampled) round trip.
func (c *Client) hedgedCharacterize(ctx context.Context, req *api.CharacterizeRequest) (*api.CharacterizeResponse, error) {
	delay, ok := c.lat.p95()
	if !ok {
		started := time.Now()
		out := new(api.CharacterizeResponse)
		if err := c.call(ctx, http.MethodPost, "/v1/characterize", req, out); err != nil {
			return nil, err
		}
		c.lat.observe(time.Since(started))
		return out, nil
	}

	type result struct {
		out *api.CharacterizeResponse
		err error
	}
	// Both attempts share one trace: the hedge is the same logical
	// request racing itself, so it reuses the parent's ID (tagged
	// hedge=true server-side via X-Hedged) instead of minting a second.
	if obs.TraceID(ctx) == "" {
		ctx = obs.WithTrace(ctx, obs.NewTrace("", nil))
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel() // the losing attempt is abandoned, not leaked
	results := make(chan result, 2)
	attempt := func(ctx context.Context) {
		started := time.Now()
		out := new(api.CharacterizeResponse)
		err := c.call(ctx, http.MethodPost, "/v1/characterize", req, out)
		if err == nil {
			c.lat.observe(time.Since(started))
		}
		results <- result{out, err}
	}
	go attempt(ctx)
	inflight := 1
	timer := time.NewTimer(delay)
	defer timer.Stop()
	var first *result
	for inflight > 0 {
		select {
		case <-timer.C:
			// Primary outlived p95: hedge, if the budget funds it.
			if c.budget == nil || c.budget.Allow() {
				go attempt(markHedge(ctx))
				inflight++
			}
		case res := <-results:
			inflight--
			if res.err == nil {
				return res.out, nil
			}
			if first == nil {
				first = &res
			}
		}
	}
	return nil, first.err
}

// Profiles runs GET /v1/profiles: the cached profile inventory (up to
// the server's default page cap; use ProfilesPage to iterate a larger
// inventory).
func (c *Client) Profiles(ctx context.Context) (*api.ProfilesResponse, error) {
	out := new(api.ProfilesResponse)
	if err := c.call(ctx, http.MethodGet, "/v1/profiles", nil, out); err != nil {
		return nil, err
	}
	return out, nil
}

// ProfilesPage runs GET /v1/profiles with pagination. A zero limit
// takes the server default; cursor is the NextCursor of the previous
// page (empty for the first). Iteration ends when NextCursor comes
// back empty.
func (c *Client) ProfilesPage(ctx context.Context, limit int, cursor string) (*api.ProfilesResponse, error) {
	out := new(api.ProfilesResponse)
	if err := c.call(ctx, http.MethodGet, "/v1/profiles"+pageQuery(limit, cursor, nil), nil, out); err != nil {
		return nil, err
	}
	return out, nil
}

// Traces runs GET /debug/traces: the daemon's recent-request trace
// ring, newest first. A positive limit caps the page; slow narrows the
// listing to the slow-request exemplars instead.
func (c *Client) Traces(ctx context.Context, limit int, slow bool) (*api.TracesResponse, error) {
	q := url.Values{}
	if limit > 0 {
		q.Set("limit", strconv.Itoa(limit))
	}
	if slow {
		q.Set("slow", "1")
	}
	path := "/debug/traces"
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	out := new(api.TracesResponse)
	if err := c.call(ctx, http.MethodGet, path, nil, out); err != nil {
		return nil, err
	}
	return out, nil
}

// pageQuery renders the shared ?limit=/?cursor= pagination parameters,
// merging any route-specific extras.
func pageQuery(limit int, cursor string, extra url.Values) string {
	q := url.Values{}
	for k, vs := range extra {
		q[k] = vs
	}
	if limit > 0 {
		q.Set("limit", strconv.Itoa(limit))
	}
	if cursor != "" {
		q.Set("cursor", cursor)
	}
	if len(q) == 0 {
		return ""
	}
	return "?" + q.Encode()
}

// Healthz runs GET /healthz. The daemon serves the health body with an
// HTTP 503 when every machine's breaker is open ("unavailable"), and
// that still decodes here: callers read Status rather than an error, so
// a degraded daemon is observable, not opaque.
func (c *Client) Healthz(ctx context.Context) (*api.HealthResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes))
	if err != nil {
		return nil, err
	}
	out := new(api.HealthResponse)
	if err := json.Unmarshal(data, out); err == nil && out.Status != "" {
		if out.APIVersion != api.Version {
			return nil, versionError(out.APIVersion)
		}
		return out, nil
	}
	return nil, decodeError(resp, data)
}

// Metrics runs GET /metrics and returns the Prometheus text exposition.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes))
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", decodeError(resp, data)
	}
	return string(data), nil
}

// maxResponseBytes bounds response bodies, mirroring the server's
// request-body cap.
const maxResponseBytes = 8 << 20

// call performs one JSON round-trip, retrying breaker_open rejections
// when configured. Retries spend the retry budget when one is set:
// fresh calls fund it, and a drained bucket surfaces the rejection
// instead of piling on.
func (c *Client) call(ctx context.Context, method, path string, in, out any) error {
	c.budget.OnRequest()
	for attempt := 0; ; attempt++ {
		err := c.once(ctx, method, path, in, out)
		if err == nil {
			return nil
		}
		ae, ok := err.(*api.Error)
		if !ok || ae.Code != api.CodeBreakerOpen || attempt >= c.breakerRetries {
			return err
		}
		if c.budget != nil && !c.budget.Allow() {
			return err
		}
		cooldown := ae.RetryAfter
		if cooldown <= 0 && !ae.RetryAfterSet {
			// No explicit header: fall back to a default pause. An
			// explicit Retry-After: 0 means retry immediately.
			cooldown = time.Second
		}
		if cooldown > c.retryCap {
			cooldown = c.retryCap
		}
		timer := time.NewTimer(cooldown)
		select {
		case <-ctx.Done():
			timer.Stop()
			return ctx.Err()
		case <-timer.C:
		}
	}
}

func (c *Client) once(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		raw, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("client: encoding request: %w", err)
		}
		body = bytes.NewReader(raw)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.apiKey != "" {
		req.Header.Set("X-API-Key", c.apiKey)
	}
	if id := obs.TraceID(ctx); id != "" {
		req.Header.Set(api.TraceHeader, id)
	}
	if isHedge(ctx) {
		req.Header.Set(api.HedgeHeader, "true")
	}
	// Deadline propagation: forward the caller's context deadline so the
	// daemon can shed work it cannot finish in the remaining budget
	// instead of computing an answer nobody will read.
	if dl, ok := ctx.Deadline(); ok {
		req.Header.Set(overload.DeadlineHeader, overload.FormatDeadline(dl))
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes))
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		return decodeError(resp, data)
	}
	if err := json.Unmarshal(data, out); err != nil {
		return fmt.Errorf("client: decoding %s response: %w", path, err)
	}
	var probe struct {
		APIVersion string `json:"api_version"`
	}
	if err := json.Unmarshal(data, &probe); err == nil && probe.APIVersion != api.Version {
		return versionError(probe.APIVersion)
	}
	return nil
}

// decodeError restores the typed error envelope from a non-2xx
// response, re-attaching the transport-level fields the body does not
// carry: the HTTP status and the Retry-After cooldown.
func decodeError(resp *http.Response, data []byte) error {
	var env api.ErrorEnvelope
	if err := json.Unmarshal(data, &env); err != nil || env.Error == nil || env.Error.Code == "" {
		return fmt.Errorf("client: HTTP %d with untyped body: %s", resp.StatusCode, truncate(data))
	}
	ae := env.Error
	ae.Status = resp.StatusCode
	if ae.TraceID == "" {
		ae.TraceID = resp.Header.Get(api.TraceHeader)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if d, ok := parseRetryAfter(ra, time.Now()); ok {
			ae.RetryAfter = d
			ae.RetryAfterSet = true
		}
	}
	return ae
}

// parseRetryAfter decodes a Retry-After header value: either
// delta-seconds or an HTTP-date (RFC 9110 §10.2.3). A zero return
// with ok=true means "retry immediately" — callers must not confuse
// it with an absent header. Negative values (a delta the server
// should not send, or a date already past) clamp to 0: the wait is
// over. Malformed values report ok=false and are ignored.
func parseRetryAfter(value string, now time.Time) (time.Duration, bool) {
	value = strings.TrimSpace(value)
	if secs, err := strconv.ParseInt(value, 10, 64); err == nil {
		if secs <= 0 {
			return 0, true
		}
		return time.Duration(secs) * time.Second, true
	}
	if t, err := http.ParseTime(value); err == nil {
		d := t.Sub(now)
		if d < 0 {
			d = 0
		}
		return d, true
	}
	return 0, false
}

func versionError(got string) error {
	return fmt.Errorf("client: server speaks api_version %q, this client %q", got, api.Version)
}

func truncate(data []byte) string {
	const max = 256
	if len(data) <= max {
		return string(data)
	}
	return string(data[:max]) + "…"
}

// latencyTracker keeps a ring of recent request latencies and reports
// their p95 — the hedge trigger delay. It refuses to extrapolate from
// thin air: p95 reports ok only once minHedgeSamples points exist.
type latencyTracker struct {
	mu      sync.Mutex
	samples [64]time.Duration
	next    int
	n       int
}

const minHedgeSamples = 8

func (t *latencyTracker) observe(d time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.samples[t.next] = d
	t.next = (t.next + 1) % len(t.samples)
	if t.n < len(t.samples) {
		t.n++
	}
}

func (t *latencyTracker) p95() (time.Duration, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.n < minHedgeSamples {
		return 0, false
	}
	sorted := make([]time.Duration, t.n)
	copy(sorted, t.samples[:t.n])
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := t.n * 95 / 100
	if idx >= t.n {
		idx = t.n - 1
	}
	return sorted[idx], true
}

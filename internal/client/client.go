// Package client is the typed Go client of the biasmitd HTTP API. It
// speaks the wire contract defined in internal/api — the same structs
// the server serializes — so request and response shapes are checked at
// compile time on both sides.
//
// Failures surface as *api.Error: the typed envelope the daemon writes,
// restored field-for-field (code, message, HTTP status, and the
// Retry-After cooldown from the header). Callers branch on the stable
// codes, never on message text:
//
//	resp, err := cl.Mitigate(ctx, req)
//	var ae *api.Error
//	if errors.As(err, &ae) && ae.Code == api.CodeBreakerOpen { ... }
//
// The client optionally retries breaker_open rejections itself
// (WithBreakerRetries), sleeping out the server's advertised cooldown
// under the caller's context deadline — the polite way to ride out a
// machine's dark window.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"biasmit/internal/api"
)

// Client talks to one biasmitd instance. Construct with New; safe for
// concurrent use (it shares one underlying http.Client).
type Client struct {
	base           string
	http           *http.Client
	apiKey         string
	breakerRetries int
	retryCap       time.Duration
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying http.Client (custom
// transports, test doubles). The default has no client-side timeout;
// use context deadlines per call.
func WithHTTPClient(h *http.Client) Option {
	return func(c *Client) { c.http = h }
}

// WithAPIKey sends key as the X-API-Key header on every request. The
// daemon uses it as the tenant identity for async-job fairness and
// quotas; requests without one share the "anon" tenant.
func WithAPIKey(key string) Option {
	return func(c *Client) { c.apiKey = key }
}

// WithBreakerRetries makes the client retry a request up to n times when
// the daemon rejects it with breaker_open, sleeping the Retry-After
// cooldown (capped at 30s, and always bounded by the call's context)
// between attempts. Zero — the default — surfaces the rejection
// immediately.
func WithBreakerRetries(n int) Option {
	return func(c *Client) { c.breakerRetries = n }
}

// New returns a client for the daemon at base, e.g.
// "http://127.0.0.1:8080". A scheme-less base is assumed http.
func New(base string, opts ...Option) *Client {
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	c := &Client{
		base:     strings.TrimRight(base, "/"),
		http:     &http.Client{},
		retryCap: 30 * time.Second,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Mitigate runs POST /v1/mitigate: one benchmark under one measurement
// policy on one machine.
func (c *Client) Mitigate(ctx context.Context, req *api.MitigateRequest) (*api.MitigateResponse, error) {
	out := new(api.MitigateResponse)
	if err := c.call(ctx, http.MethodPost, "/v1/mitigate", req, out); err != nil {
		return nil, err
	}
	return out, nil
}

// Characterize runs POST /v1/characterize: learn (or fetch the cached)
// RBMS profile of a machine.
func (c *Client) Characterize(ctx context.Context, req *api.CharacterizeRequest) (*api.CharacterizeResponse, error) {
	out := new(api.CharacterizeResponse)
	if err := c.call(ctx, http.MethodPost, "/v1/characterize", req, out); err != nil {
		return nil, err
	}
	return out, nil
}

// Profiles runs GET /v1/profiles: the cached profile inventory.
func (c *Client) Profiles(ctx context.Context) (*api.ProfilesResponse, error) {
	out := new(api.ProfilesResponse)
	if err := c.call(ctx, http.MethodGet, "/v1/profiles", nil, out); err != nil {
		return nil, err
	}
	return out, nil
}

// Healthz runs GET /healthz. The daemon serves the health body with an
// HTTP 503 when every machine's breaker is open ("unavailable"), and
// that still decodes here: callers read Status rather than an error, so
// a degraded daemon is observable, not opaque.
func (c *Client) Healthz(ctx context.Context) (*api.HealthResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes))
	if err != nil {
		return nil, err
	}
	out := new(api.HealthResponse)
	if err := json.Unmarshal(data, out); err == nil && out.Status != "" {
		if out.APIVersion != api.Version {
			return nil, versionError(out.APIVersion)
		}
		return out, nil
	}
	return nil, decodeError(resp, data)
}

// Metrics runs GET /metrics and returns the Prometheus text exposition.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes))
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", decodeError(resp, data)
	}
	return string(data), nil
}

// maxResponseBytes bounds response bodies, mirroring the server's
// request-body cap.
const maxResponseBytes = 8 << 20

// call performs one JSON round-trip, retrying breaker_open rejections
// when configured.
func (c *Client) call(ctx context.Context, method, path string, in, out any) error {
	for attempt := 0; ; attempt++ {
		err := c.once(ctx, method, path, in, out)
		if err == nil {
			return nil
		}
		ae, ok := err.(*api.Error)
		if !ok || ae.Code != api.CodeBreakerOpen || attempt >= c.breakerRetries {
			return err
		}
		cooldown := ae.RetryAfter
		if cooldown <= 0 {
			cooldown = time.Second
		}
		if cooldown > c.retryCap {
			cooldown = c.retryCap
		}
		timer := time.NewTimer(cooldown)
		select {
		case <-ctx.Done():
			timer.Stop()
			return ctx.Err()
		case <-timer.C:
		}
	}
}

func (c *Client) once(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		raw, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("client: encoding request: %w", err)
		}
		body = bytes.NewReader(raw)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.apiKey != "" {
		req.Header.Set("X-API-Key", c.apiKey)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes))
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		return decodeError(resp, data)
	}
	if err := json.Unmarshal(data, out); err != nil {
		return fmt.Errorf("client: decoding %s response: %w", path, err)
	}
	var probe struct {
		APIVersion string `json:"api_version"`
	}
	if err := json.Unmarshal(data, &probe); err == nil && probe.APIVersion != api.Version {
		return versionError(probe.APIVersion)
	}
	return nil
}

// decodeError restores the typed error envelope from a non-2xx
// response, re-attaching the transport-level fields the body does not
// carry: the HTTP status and the Retry-After cooldown.
func decodeError(resp *http.Response, data []byte) error {
	var env api.ErrorEnvelope
	if err := json.Unmarshal(data, &env); err != nil || env.Error == nil || env.Error.Code == "" {
		return fmt.Errorf("client: HTTP %d with untyped body: %s", resp.StatusCode, truncate(data))
	}
	ae := env.Error
	ae.Status = resp.StatusCode
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.ParseInt(ra, 10, 64); err == nil && secs > 0 {
			ae.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	return ae
}

func versionError(got string) error {
	return fmt.Errorf("client: server speaks api_version %q, this client %q", got, api.Version)
}

func truncate(data []byte) string {
	const max = 256
	if len(data) <= max {
		return string(data)
	}
	return string(data[:max]) + "…"
}

package client

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"biasmit/internal/api"
)

// TestParseRetryAfter pins both wire forms of the header: integer
// delta-seconds (including the valid "0" = retry immediately) and the
// HTTP-date form, with negatives clamping to 0 and garbage rejected.
func TestParseRetryAfter(t *testing.T) {
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	cases := []struct {
		name  string
		value string
		want  time.Duration
		ok    bool
	}{
		{"delta seconds", "30", 30 * time.Second, true},
		{"delta one", "1", time.Second, true},
		{"zero means retry now", "0", 0, true},
		{"negative delta clamps to zero", "-7", 0, true},
		{"surrounding whitespace", "  15 ", 15 * time.Second, true},
		{"http date in the future", now.Add(90 * time.Second).UTC().Format(http.TimeFormat), 90 * time.Second, true},
		{"http date right now", now.UTC().Format(http.TimeFormat), 0, true},
		{"http date in the past clamps to zero", now.Add(-time.Hour).UTC().Format(http.TimeFormat), 0, true},
		{"rfc850 date form", now.Add(2 * time.Minute).UTC().Format("Monday, 02-Jan-06 15:04:05 GMT"), 2 * time.Minute, true},
		{"empty", "", 0, false},
		{"garbage", "soon", 0, false},
		{"fractional seconds are not delta-seconds", "1.5", 0, false},
		{"duration syntax is not on the wire", "30s", 0, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, ok := parseRetryAfter(tc.value, now)
			if got != tc.want || ok != tc.ok {
				t.Fatalf("parseRetryAfter(%q) = %v, %v; want %v, %v", tc.value, got, ok, tc.want, tc.ok)
			}
		})
	}
}

// TestRetryAfterZeroRetriesImmediately is the end-to-end regression
// for the dropped `Retry-After: 0`: a breaker_open rejection carrying
// an explicit zero must mark the error RetryAfterSet (so the caller's
// default one-second cooldown does not apply) and the retry loop must
// proceed without the fallback pause.
func TestRetryAfterZeroRetriesImmediately(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set(api.TraceHeader, "01J4QK3F8ZV9Q6WZJ4M2R7XT5C")
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusServiceUnavailable)
			_ = json.NewEncoder(w).Encode(map[string]any{
				"api_version": api.Version,
				"error":       map[string]any{"code": api.CodeBreakerOpen, "message": "open"},
			})
			return
		}
		_, _ = w.Write([]byte(`{"api_version":"v1","profiles":[]}`))
	}))
	defer srv.Close()

	cl := New(srv.URL, WithBreakerRetries(1))
	start := time.Now()
	if _, err := cl.Profiles(context.Background()); err != nil {
		t.Fatalf("health after breaker retry: %v", err)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("server saw %d calls, want 2 (reject then retry)", got)
	}
	// The old behavior slept the 1s fallback; an explicit zero must
	// not. Allow generous scheduler slack, but far below one second.
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Fatalf("retry after explicit Retry-After: 0 took %v; the fallback cooldown leaked in", elapsed)
	}
}

// TestRetryAfterHTTPDateDecodes covers the previously ignored
// HTTP-date form arriving on a typed error.
func TestRetryAfterHTTPDateDecodes(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", time.Now().Add(30*time.Second).UTC().Format(http.TimeFormat))
		w.WriteHeader(http.StatusServiceUnavailable)
		_ = json.NewEncoder(w).Encode(map[string]any{
			"api_version": api.Version,
			"error":       map[string]any{"code": api.CodeBreakerOpen, "message": "open"},
		})
	}))
	defer srv.Close()

	cl := New(srv.URL)
	_, err := cl.Profiles(context.Background())
	ae, ok := err.(*api.Error)
	if !ok {
		t.Fatalf("want *api.Error, got %v", err)
	}
	if !ae.RetryAfterSet {
		t.Fatal("HTTP-date Retry-After not marked RetryAfterSet")
	}
	// The date round-trips through formatting, so allow a couple of
	// seconds of truncation and clock skew.
	if ae.RetryAfter < 25*time.Second || ae.RetryAfter > 31*time.Second {
		t.Fatalf("RetryAfter %v, want ≈30s decoded from the HTTP date", ae.RetryAfter)
	}
}

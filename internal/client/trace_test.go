package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"biasmit/internal/api"
	"biasmit/internal/obs"
)

// TestTraceHeaderForwarded: a trace ID minted (or adopted) with
// WithTraceID rides every request as X-Trace-Id, so the daemon adopts
// the client's ID instead of minting its own.
func TestTraceHeaderForwarded(t *testing.T) {
	var mu sync.Mutex
	var got []string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		got = append(got, r.Header.Get(api.TraceHeader))
		mu.Unlock()
		w.Write([]byte(`{"api_version":"v1","profiles":[]}`))
	}))
	defer ts.Close()
	cl := New(ts.URL)

	// Minted: WithTraceID("") makes one up and reports it.
	ctx, minted := WithTraceID(context.Background(), "")
	if err := obs.ValidTraceID(minted); err != nil {
		t.Fatalf("minted trace ID %q invalid: %v", minted, err)
	}
	if _, err := cl.Profiles(ctx); err != nil {
		t.Fatal(err)
	}

	// Adopted: a valid caller-supplied ID is used verbatim.
	mine := obs.NewTraceID()
	ctx, adopted := WithTraceID(context.Background(), mine)
	if adopted != mine {
		t.Fatalf("WithTraceID(%q) minted %q instead of adopting", mine, adopted)
	}
	if _, err := cl.Profiles(ctx); err != nil {
		t.Fatal(err)
	}

	// Untraced: a bare context sends no header at all.
	if _, err := cl.Profiles(context.Background()); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(got) != 3 || got[0] != minted || got[1] != mine || got[2] != "" {
		t.Fatalf("forwarded trace headers %q, want [%q %q \"\"]", got, minted, mine)
	}
}

// TestErrorTraceIDRestoredFromHeader: an error envelope that omits the
// trace ID from the error object (an old daemon, a proxy) still yields
// a traceable *api.Error — the client backfills it from X-Trace-Id.
func TestErrorTraceIDRestoredFromHeader(t *testing.T) {
	const headerID = "01AAAAAAAAAAAAAAAAAAAAAAAA"
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(api.TraceHeader, headerID)
		w.WriteHeader(http.StatusNotFound)
		w.Write([]byte(`{"api_version":"v1","error":{"code":"unknown_machine","message":"nope"}}`))
	}))
	defer ts.Close()

	_, err := New(ts.URL).Mitigate(context.Background(), &api.MitigateRequest{
		Machine: "nope", Policy: "baseline", Benchmark: "bv-4A", Shots: 64,
	})
	var ae *api.Error
	if !errors.As(err, &ae) {
		t.Fatalf("error %v (%T), want *api.Error", err, err)
	}
	if ae.TraceID != headerID {
		t.Fatalf("error trace ID %q, want the header's %q", ae.TraceID, headerID)
	}
}

// TestHedgeSharesParentTrace: the hedged duplicate of a slow
// characterize is the same logical request, so it reuses the parent
// trace ID and declares itself with X-Hedged — two attempts, one trace,
// exactly one hedge marker.
func TestHedgeSharesParentTrace(t *testing.T) {
	type attempt struct{ trace, hedged string }
	var mu sync.Mutex
	var attempts []attempt
	var calls int
	stall := make(chan struct{}) // held open for the whole test
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		calls++
		n := calls
		attempts = append(attempts, attempt{r.Header.Get(api.TraceHeader), r.Header.Get(api.HedgeHeader)})
		mu.Unlock()
		if n == minHedgeSamples+1 {
			select {
			case <-stall:
			case <-r.Context().Done():
				return
			}
		}
		w.Write([]byte(charBody))
	}))
	defer ts.Close()
	defer close(stall)

	cl := New(ts.URL, WithHedgedReads(), WithRetryBudget(0.1, 10))
	req := &api.CharacterizeRequest{Machine: "ibmqx4"}
	for i := 0; i < minHedgeSamples; i++ {
		if _, err := cl.Characterize(context.Background(), req); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := cl.Characterize(context.Background(), req); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(attempts) != minHedgeSamples+2 {
		t.Fatalf("%d attempts, want %d (warmup + straggler + hedge)", len(attempts), minHedgeSamples+2)
	}
	straggler, hedge := attempts[minHedgeSamples], attempts[minHedgeSamples+1]
	if straggler.trace == "" || straggler.trace != hedge.trace {
		t.Fatalf("hedge minted its own trace: straggler=%q hedge=%q", straggler.trace, hedge.trace)
	}
	if straggler.hedged != "" || hedge.hedged != "true" {
		t.Fatalf("hedge markers wrong: straggler=%q hedge=%q, want only the hedge marked", straggler.hedged, hedge.hedged)
	}
}

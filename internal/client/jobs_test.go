package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"biasmit/internal/api"
	"biasmit/internal/server"
)

// jobsDaemon is testDaemon with an identity attached — the job API keys
// fairness and quotas off X-API-Key.
func jobsDaemon(t *testing.T, key string) *Client {
	t.Helper()
	s := server.New(server.Config{
		Workers:      2,
		MaxJobs:      2,
		ProfileShots: 64,
		MaxShots:     1 << 16,
		ProfileTTL:   time.Hour,
		JobWorkers:   2,
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return New(ts.URL, WithAPIKey(key))
}

func TestJobSubmitWaitRoundTrip(t *testing.T) {
	cl := jobsDaemon(t, "team-a")
	ctx := context.Background()

	sub, err := cl.SubmitJob(ctx, &api.JobSubmitRequest{
		Type: api.JobTypeMitigate,
		Mitigate: &api.MitigateRequest{
			Machine: "ibmqx4", Policy: "baseline", Benchmark: "bv-4A", Shots: 256, Seed: 3,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sub.Job.State != api.JobStateQueued || sub.Job.Tenant != "team-a" {
		t.Fatalf("submitted job %+v, want queued under team-a (WithAPIKey)", sub.Job)
	}

	final, err := cl.WaitJob(ctx, sub.Job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.Job.State != api.JobStateDone {
		t.Fatalf("job ended %s: %+v", final.Job.State, final.Job.Error)
	}
	var out api.MitigateResponse
	if err := json.Unmarshal(final.Result, &out); err != nil {
		t.Fatal(err)
	}
	if out.Machine != "ibmqx4" || len(out.Outcomes) == 0 {
		t.Fatalf("incomplete job result: %s", final.Result)
	}

	// The list API sees the job under its tenant and nowhere else.
	list, err := cl.Jobs(ctx, api.JobStateDone, "team-a")
	if err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) != 1 || list.Jobs[0].ID != sub.Job.ID {
		t.Fatalf("list %+v, want the one done team-a job", list.Jobs)
	}
	other, err := cl.Jobs(ctx, "", "someone-else")
	if err != nil {
		t.Fatal(err)
	}
	if len(other.Jobs) != 0 {
		t.Fatalf("foreign tenant sees %+v", other.Jobs)
	}
}

func TestJobCancelAndTypedErrors(t *testing.T) {
	cl := jobsDaemon(t, "")
	ctx := context.Background()

	// Unknown (but well-formed) ID → typed job_not_found.
	_, err := cl.Job(ctx, "00000000000000000000000000", 0)
	var ae *api.Error
	if !errors.As(err, &ae) || ae.Code != api.CodeJobNotFound || ae.Status != http.StatusNotFound {
		t.Fatalf("error %v, want typed job_not_found/404", err)
	}

	sub, err := cl.SubmitJob(ctx, &api.JobSubmitRequest{
		Type: api.JobTypeMitigate,
		Mitigate: &api.MitigateRequest{
			Machine: "ibmqx4", Policy: "baseline", Benchmark: "bv-4A", Shots: 1 << 16, Seed: 5,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.CancelJob(ctx, sub.Job.ID); err != nil {
		t.Fatal(err)
	}
	final, err := cl.WaitJob(ctx, sub.Job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.Job.State != api.JobStateCancelled {
		t.Fatalf("job ended %s, want cancelled", final.Job.State)
	}
	// A second cancel is the typed terminal conflict.
	_, err = cl.CancelJob(ctx, sub.Job.ID)
	if !errors.As(err, &ae) || ae.Code != api.CodeJobTerminal || ae.Status != http.StatusConflict {
		t.Fatalf("re-cancel error %v, want typed job_terminal/409", err)
	}
}

// TestWaitJobBoundedByContext: WaitJob must give up when the caller's
// context does, not poll forever.
func TestWaitJobBoundedByContext(t *testing.T) {
	// A fake daemon that always reports the job still running.
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"api_version":"v1","job":{"id":"00000000000000000000000001","type":"mitigate","state":"running","tenant":"anon","submitted_at":"2026-01-01T00:00:00Z"}}`))
	}))
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	_, err := New(ts.URL).WaitJob(ctx, "00000000000000000000000001")
	if err == nil || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error %v, want context.DeadlineExceeded", err)
	}
}

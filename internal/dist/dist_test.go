package dist

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"biasmit/internal/bitstring"
)

func bs(s string) bitstring.Bits { return bitstring.MustParse(s) }

func TestCountsAddGetTotal(t *testing.T) {
	c := NewCounts(3)
	c.Add(bs("101"), 3)
	c.Add(bs("001"), 1)
	c.Add(bs("101"), 2)
	if got := c.Get(bs("101")); got != 5 {
		t.Errorf("Get(101) = %d, want 5", got)
	}
	if got := c.Get(bs("111")); got != 0 {
		t.Errorf("Get(111) = %d, want 0", got)
	}
	if c.Total() != 6 {
		t.Errorf("Total = %d, want 6", c.Total())
	}
}

func TestCountsZeroAddIsNoop(t *testing.T) {
	c := NewCounts(2)
	c.Add(bs("01"), 0)
	if c.Total() != 0 || len(c.Outcomes()) != 0 {
		t.Error("Add(_,0) changed the histogram")
	}
}

func TestCountsWidthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewCounts(3).Add(bs("0101"), 1)
}

func TestCountsMerge(t *testing.T) {
	a, b := NewCounts(2), NewCounts(2)
	a.Add(bs("00"), 2)
	a.Add(bs("11"), 1)
	b.Add(bs("11"), 4)
	b.Add(bs("01"), 3)
	a.Merge(b)
	if a.Total() != 10 || a.Get(bs("11")) != 5 || a.Get(bs("01")) != 3 {
		t.Errorf("merge result: total=%d 11=%d 01=%d", a.Total(), a.Get(bs("11")), a.Get(bs("01")))
	}
}

func TestXorTransformCounts(t *testing.T) {
	// Paper Fig 7: inverted-mode raw outcomes are XORed with the
	// inversion string to recover logical outcomes.
	c := NewCounts(3)
	c.Add(bs("010"), 75)
	c.Add(bs("000"), 15)
	fixed := c.XorTransform(bs("111"))
	if fixed.Get(bs("101")) != 75 || fixed.Get(bs("111")) != 15 {
		t.Errorf("XorTransform: %v", fixed.m)
	}
	if fixed.Total() != 90 {
		t.Errorf("total = %d", fixed.Total())
	}
}

func TestDistNormalizeAndMass(t *testing.T) {
	c := NewCounts(2)
	c.Add(bs("00"), 3)
	c.Add(bs("11"), 1)
	d := c.Dist()
	if math.Abs(d.Mass()-1) > 1e-12 {
		t.Errorf("mass = %v", d.Mass())
	}
	if math.Abs(d.Prob(bs("00"))-0.75) > 1e-12 {
		t.Errorf("P(00) = %v", d.Prob(bs("00")))
	}
	un := Dist{Width: 1, P: map[bitstring.Bits]float64{bs("0"): 2, bs("1"): 6}}
	n := un.Normalize()
	if math.Abs(n.Prob(bs("1"))-0.75) > 1e-12 {
		t.Errorf("normalized P(1) = %v", n.Prob(bs("1")))
	}
}

func TestMixMatchesPaperFig7(t *testing.T) {
	// Paper Fig 7: standard mode A {001:.45,101:.35,100:.15,000:.05},
	// inverted mode after correction C {101:.75,111:.15,100:.05,001:.05};
	// merged D {101:.55, 001:.25, 100:.10, 000:.025, 111:.075}.
	a := Dist{Width: 3, P: map[bitstring.Bits]float64{
		bs("001"): 0.45, bs("101"): 0.35, bs("100"): 0.15, bs("000"): 0.05,
	}}
	c := Dist{Width: 3, P: map[bitstring.Bits]float64{
		bs("101"): 0.75, bs("111"): 0.15, bs("100"): 0.05, bs("001"): 0.05,
	}}
	merged := Mix([]Dist{a, c}, []float64{1, 1})
	want := map[string]float64{"101": 0.55, "001": 0.25, "100": 0.10, "000": 0.025, "111": 0.075}
	for s, p := range want {
		if got := merged.Prob(bs(s)); math.Abs(got-p) > 1e-12 {
			t.Errorf("merged P(%s) = %v, want %v", s, got, p)
		}
	}
}

func TestTVD(t *testing.T) {
	a := Dist{Width: 1, P: map[bitstring.Bits]float64{bs("0"): 1}}
	b := Dist{Width: 1, P: map[bitstring.Bits]float64{bs("1"): 1}}
	if got := a.TVD(b); math.Abs(got-1) > 1e-12 {
		t.Errorf("disjoint TVD = %v, want 1", got)
	}
	if got := a.TVD(a); got != 0 {
		t.Errorf("self TVD = %v", got)
	}
}

func TestTopKAndRank(t *testing.T) {
	d := Dist{Width: 2, P: map[bitstring.Bits]float64{
		bs("00"): 0.5, bs("01"): 0.3, bs("10"): 0.15, bs("11"): 0.05,
	}}
	top := d.TopK(2)
	if len(top) != 2 || top[0] != bs("00") || top[1] != bs("01") {
		t.Errorf("TopK = %v", top)
	}
	if got := d.Rank(bs("00")); got != 1 {
		t.Errorf("Rank(00) = %d", got)
	}
	if got := d.Rank(bs("11")); got != 4 {
		t.Errorf("Rank(11) = %d", got)
	}
	if got := d.Rank(bs("01")); got != 2 {
		t.Errorf("Rank(01) = %d", got)
	}
}

func TestRankUnobservedOutcome(t *testing.T) {
	d := Dist{Width: 2, P: map[bitstring.Bits]float64{bs("00"): 0.9, bs("01"): 0.1}}
	if got := d.Rank(bs("11")); got != 3 {
		t.Errorf("Rank(unseen) = %d, want 3", got)
	}
}

func TestTopKDeterministicTies(t *testing.T) {
	d := Dist{Width: 2, P: map[bitstring.Bits]float64{
		bs("11"): 0.25, bs("10"): 0.25, bs("01"): 0.25, bs("00"): 0.25,
	}}
	top := d.TopK(4)
	want := []string{"00", "01", "10", "11"}
	for i, s := range want {
		if top[i] != bs(s) {
			t.Fatalf("tie order: got %v", top)
		}
	}
}

func TestSamplerMatchesDistribution(t *testing.T) {
	d := Dist{Width: 2, P: map[bitstring.Bits]float64{
		bs("00"): 0.6, bs("01"): 0.25, bs("10"): 0.1, bs("11"): 0.05,
	}}
	rng := rand.New(rand.NewSource(7))
	c := NewSampler(d).SampleCounts(rng, 200000)
	got := c.Dist()
	if tvd := got.TVD(d); tvd > 0.01 {
		t.Errorf("sampled TVD = %v, want < 0.01", tvd)
	}
}

func TestSamplerPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewSampler(NewDist(2))
}

// Property: XorTransform preserves total count and is an involution.
func TestQuickXorTransformInvolution(t *testing.T) {
	f := func(entries []uint16, sraw uint16) bool {
		const width = 6
		c := NewCounts(width)
		for i, e := range entries {
			c.Add(bitstring.New(uint64(e), width), i%5+1)
		}
		s := bitstring.New(uint64(sraw), width)
		twice := c.XorTransform(s).XorTransform(s)
		if twice.Total() != c.Total() {
			return false
		}
		for _, b := range c.Outcomes() {
			if twice.Get(b) != c.Get(b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Error(err)
	}
}

// Property: Dist() of any non-empty Counts has unit mass, and
// XorTransform preserves mass exactly.
func TestQuickMassConservation(t *testing.T) {
	f := func(entries []uint16, sraw uint16) bool {
		const width = 5
		c := NewCounts(width)
		for i, e := range entries {
			c.Add(bitstring.New(uint64(e), width), i%7+1)
		}
		if c.Total() == 0 {
			return true
		}
		d := c.Dist()
		s := bitstring.New(uint64(sraw), width)
		return math.Abs(d.Mass()-1) < 1e-9 && math.Abs(d.XorTransform(s).Mass()-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Error(err)
	}
}

// Property: Mix with weights proportional to trial counts equals the Dist
// of the merged Counts (SIM's two equivalent implementations).
func TestQuickMixEqualsMergedCounts(t *testing.T) {
	f := func(e1, e2 []uint8) bool {
		const width = 4
		a, b := NewCounts(width), NewCounts(width)
		for _, e := range e1 {
			a.Add(bitstring.New(uint64(e), width), 1)
		}
		for _, e := range e2 {
			b.Add(bitstring.New(uint64(e), width), 1)
		}
		if a.Total() == 0 || b.Total() == 0 {
			return true
		}
		mixed := Mix([]Dist{a.Dist(), b.Dist()}, []float64{float64(a.Total()), float64(b.Total())})
		merged := a.Clone()
		merged.Merge(b)
		return mixed.TVD(merged.Dist()) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(4))}); err != nil {
		t.Error(err)
	}
}

func TestWilsonInterval(t *testing.T) {
	c := NewCounts(1)
	c.Add(bs("1"), 50)
	c.Add(bs("0"), 50)
	lo, hi := c.WilsonInterval(bs("1"), 1.96)
	if !(lo < 0.5 && 0.5 < hi) {
		t.Errorf("interval [%v,%v] does not contain 0.5", lo, hi)
	}
	if hi-lo > 0.25 {
		t.Errorf("interval too wide at n=100: [%v,%v]", lo, hi)
	}
	// More shots shrink the interval.
	big := NewCounts(1)
	big.Add(bs("1"), 5000)
	big.Add(bs("0"), 5000)
	lo2, hi2 := big.WilsonInterval(bs("1"), 1.96)
	if hi2-lo2 >= hi-lo {
		t.Errorf("interval did not shrink: [%v,%v] vs [%v,%v]", lo2, hi2, lo, hi)
	}
	// Extremes stay within [0,1] and an empty histogram is vacuous.
	zero := NewCounts(1)
	zero.Add(bs("0"), 10)
	lo3, hi3 := zero.WilsonInterval(bs("1"), 1.96)
	if lo3 < 0 || lo3 > hi3 {
		t.Errorf("degenerate interval [%v,%v]", lo3, hi3)
	}
	l, h := NewCounts(1).WilsonInterval(bs("0"), 1.96)
	if l != 0 || h != 1 {
		t.Errorf("empty histogram interval [%v,%v]", l, h)
	}
}

func TestEntropy(t *testing.T) {
	det := Dist{Width: 2, P: map[bitstring.Bits]float64{bs("01"): 1}}
	if got := det.Entropy(); got != 0 {
		t.Errorf("deterministic entropy = %v", got)
	}
	uniform := Dist{Width: 2, P: map[bitstring.Bits]float64{
		bs("00"): 0.25, bs("01"): 0.25, bs("10"): 0.25, bs("11"): 0.25,
	}}
	if got := uniform.Entropy(); math.Abs(got-2) > 1e-12 {
		t.Errorf("uniform entropy = %v, want 2", got)
	}
	half := Dist{Width: 1, P: map[bitstring.Bits]float64{bs("0"): 0.5, bs("1"): 0.5}}
	if got := half.Entropy(); math.Abs(got-1) > 1e-12 {
		t.Errorf("coin entropy = %v, want 1", got)
	}
}

func TestKL(t *testing.T) {
	p := Dist{Width: 1, P: map[bitstring.Bits]float64{bs("0"): 0.75, bs("1"): 0.25}}
	q := Dist{Width: 1, P: map[bitstring.Bits]float64{bs("0"): 0.5, bs("1"): 0.5}}
	want := 0.75*math.Log2(1.5) + 0.25*math.Log2(0.5)
	if got := p.KL(q); math.Abs(got-want) > 1e-12 {
		t.Errorf("KL = %v, want %v", got, want)
	}
	if got := p.KL(p); math.Abs(got) > 1e-12 {
		t.Errorf("self KL = %v", got)
	}
	// Support mismatch → +Inf.
	narrow := Dist{Width: 1, P: map[bitstring.Bits]float64{bs("0"): 1}}
	if got := p.KL(narrow); !math.IsInf(got, 1) {
		t.Errorf("unsupported mass KL = %v, want +Inf", got)
	}
	// KL is asymmetric but non-negative both ways here.
	if p.KL(q) < 0 || q.KL(p) < 0 {
		t.Error("negative KL")
	}
}

// Package dist represents the output log of a NISQ execution: a histogram
// of measured bit strings over many trials, and the probability
// distributions derived from it.
//
// The NISQ model of computation (paper §2.3) repeats a program for
// thousands of trials and logs each measured outcome; every reliability
// metric in the paper (PST, IST, ROCA) and both mitigation policies
// (SIM, AIM) operate on these logs. The two key transformations are
// Merge, which aggregates logs from different measurement modes, and
// XorTransform, which applies the classical post-correction for a group
// measured under an inversion string.
package dist

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"biasmit/internal/bitstring"
)

// Counts is a histogram over measured bit strings. All strings in one
// Counts must share a width. The zero value is an empty, usable histogram.
type Counts struct {
	width int
	m     map[bitstring.Bits]int
	total int
}

// NewCounts returns an empty histogram for width-wide outcomes.
func NewCounts(width int) *Counts {
	return &Counts{width: width, m: make(map[bitstring.Bits]int)}
}

// Width returns the outcome width in bits.
func (c *Counts) Width() int { return c.width }

// Total returns the total number of recorded trials.
func (c *Counts) Total() int { return c.total }

// Add records n observations of outcome b.
func (c *Counts) Add(b bitstring.Bits, n int) {
	if b.Width() != c.width {
		panic(fmt.Sprintf("dist: outcome width %d does not match histogram width %d", b.Width(), c.width))
	}
	if n < 0 {
		panic("dist: negative count")
	}
	if n == 0 {
		return
	}
	if c.m == nil {
		c.m = make(map[bitstring.Bits]int)
	}
	c.m[b] += n
	c.total += n
}

// Get returns the number of observations of outcome b.
func (c *Counts) Get(b bitstring.Bits) int { return c.m[b] }

// Outcomes returns the distinct observed outcomes in ascending numeric
// order, for deterministic iteration.
func (c *Counts) Outcomes() []bitstring.Bits {
	out := make([]bitstring.Bits, 0, len(c.m))
	for b := range c.m {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// Clone returns a deep copy.
func (c *Counts) Clone() *Counts {
	out := NewCounts(c.width)
	for b, n := range c.m {
		out.m[b] = n
	}
	out.total = c.total
	return out
}

// Merge accumulates other into c. This is the aggregation step of SIM:
// groups measured in different modes are post-corrected individually and
// then merged into one output log (paper Fig 7 step D).
func (c *Counts) Merge(other *Counts) {
	if other.width != c.width {
		panic(fmt.Sprintf("dist: merge width %d into %d", other.width, c.width))
	}
	for b, n := range other.m {
		c.Add(b, n)
	}
}

// XorTransform returns a new histogram in which every outcome has been
// XORed with s. Measuring under inversion string s and then applying
// XorTransform(s) recovers the logical outcome distribution; the paper
// calls this "post-measurement correction".
func (c *Counts) XorTransform(s bitstring.Bits) *Counts {
	if s.Width() != c.width {
		panic(fmt.Sprintf("dist: inversion string width %d does not match %d", s.Width(), c.width))
	}
	out := NewCounts(c.width)
	for b, n := range c.m {
		out.Add(b.Xor(s), n)
	}
	return out
}

// WilsonInterval returns the Wilson score interval for the probability
// of outcome b at confidence parameter z (1.96 ≈ 95%). Shot noise is the
// irreducible uncertainty of the NISQ trial loop; reporting PST without
// an interval overstates small differences between policies.
func (c *Counts) WilsonInterval(b bitstring.Bits, z float64) (lo, hi float64) {
	if c.total == 0 {
		return 0, 1
	}
	n := float64(c.total)
	p := float64(c.Get(b)) / n
	z2 := z * z
	denom := 1 + z2/n
	center := (p + z2/(2*n)) / denom
	half := z / denom * math.Sqrt(p*(1-p)/n+z2/(4*n*n))
	lo, hi = center-half, center+half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// Dist converts the histogram to a normalized probability distribution.
// An empty histogram yields an empty distribution.
func (c *Counts) Dist() Dist {
	d := Dist{Width: c.width, P: make(map[bitstring.Bits]float64, len(c.m))}
	if c.total == 0 {
		return d
	}
	inv := 1 / float64(c.total)
	for b, n := range c.m {
		d.P[b] = float64(n) * inv
	}
	return d
}

// Dist is a probability distribution over width-wide bit strings.
// Outcomes absent from P have probability zero.
type Dist struct {
	Width int
	P     map[bitstring.Bits]float64
}

// NewDist returns an empty distribution for width-wide outcomes.
func NewDist(width int) Dist {
	return Dist{Width: width, P: make(map[bitstring.Bits]float64)}
}

// Prob returns the probability of outcome b.
func (d Dist) Prob(b bitstring.Bits) float64 { return d.P[b] }

// Outcomes returns the distinct outcomes with nonzero mass in ascending
// numeric order.
func (d Dist) Outcomes() []bitstring.Bits {
	out := make([]bitstring.Bits, 0, len(d.P))
	for b := range d.P {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// Mass returns the total probability mass (1 for a proper distribution).
//
// Scalar folds over a Dist (Mass, Entropy, KL, TVD, Expectation) walk
// the outcomes in ascending numeric order, not map order: Go randomizes
// map iteration and float addition is not associative, so a map-order
// sum varies by ulps from run to run — enough to flip comparisons built
// on top of it (e.g. picking the best of two near-tied QAOA angle
// candidates) and break the repo-wide same-seed reproducibility
// guarantee.
func (d Dist) Mass() float64 {
	var s float64
	for _, b := range d.Outcomes() {
		s += d.P[b]
	}
	return s
}

// Expectation returns Σ p(x)·f(x) over the distribution, folding in
// ascending outcome order for run-to-run reproducibility (see Mass).
func (d Dist) Expectation(f func(bitstring.Bits) float64) float64 {
	var e float64
	for _, b := range d.Outcomes() {
		e += d.P[b] * f(b)
	}
	return e
}

// Normalize returns a copy of d scaled to unit mass. A zero-mass
// distribution is returned unchanged.
func (d Dist) Normalize() Dist {
	m := d.Mass()
	out := NewDist(d.Width)
	if m == 0 {
		return out
	}
	for b, p := range d.P {
		out.P[b] = p / m
	}
	return out
}

// XorTransform returns the distribution of X⊕s when X~d.
func (d Dist) XorTransform(s bitstring.Bits) Dist {
	if s.Width() != d.Width {
		panic(fmt.Sprintf("dist: inversion string width %d does not match %d", s.Width(), d.Width))
	}
	out := NewDist(d.Width)
	for b, p := range d.P {
		out.P[b.Xor(s)] += p
	}
	return out
}

// Mix returns the convex combination Σ w[i]·ds[i], normalized by Σ w[i].
// SIM's merged distribution is Mix over the per-mode corrected
// distributions weighted by each mode's trial count.
func Mix(ds []Dist, w []float64) Dist {
	if len(ds) != len(w) {
		panic("dist: Mix length mismatch")
	}
	if len(ds) == 0 {
		panic("dist: Mix of nothing")
	}
	width := ds[0].Width
	var totw float64
	for i, d := range ds {
		if d.Width != width {
			panic("dist: Mix width mismatch")
		}
		if w[i] < 0 {
			panic("dist: negative Mix weight")
		}
		totw += w[i]
	}
	out := NewDist(width)
	if totw == 0 {
		return out
	}
	for i, d := range ds {
		f := w[i] / totw
		for b, p := range d.P {
			out.P[b] += f * p
		}
	}
	return out
}

// Entropy returns the Shannon entropy of d in bits: 0 for a
// deterministic output log, Width for a uniform one. Noise drives the
// entropy of NISQ output logs up; mitigation pulls it back down.
func (d Dist) Entropy() float64 {
	var h float64
	for _, b := range d.Outcomes() {
		if p := d.P[b]; p > 0 {
			h -= p * math.Log2(p)
		}
	}
	return h
}

// KL returns the Kullback-Leibler divergence D(d‖o) in bits. It is +Inf
// when d has mass where o has none, and panics on width mismatch.
func (d Dist) KL(o Dist) float64 {
	if d.Width != o.Width {
		panic("dist: KL width mismatch")
	}
	var kl float64
	for _, b := range d.Outcomes() {
		p := d.P[b]
		if p == 0 {
			continue
		}
		q := o.P[b]
		if q == 0 {
			return math.Inf(1)
		}
		kl += p * math.Log2(p/q)
	}
	return kl
}

// TVD returns the total-variation distance between d and o: half the L1
// distance, in [0,1]. Used to compare measured distributions against
// ideal ones in tests and experiments.
func (d Dist) TVD(o Dist) float64 {
	if d.Width != o.Width {
		panic("dist: TVD width mismatch")
	}
	var s float64
	for _, b := range d.Outcomes() {
		s += math.Abs(d.P[b] - o.P[b])
	}
	for _, b := range o.Outcomes() {
		if _, seen := d.P[b]; !seen {
			s += o.P[b]
		}
	}
	return s / 2
}

// TopK returns the k most probable outcomes in descending probability,
// breaking probability ties by ascending numeric value for determinism.
// If fewer than k outcomes have mass, all of them are returned.
func (d Dist) TopK(k int) []bitstring.Bits {
	out := d.Outcomes()
	sort.SliceStable(out, func(i, j int) bool { return d.P[out[i]] > d.P[out[j]] })
	if k < len(out) {
		out = out[:k]
	}
	return out
}

// Rank returns the 1-based rank of outcome b when outcomes are sorted by
// descending probability, with ascending numeric value breaking ties.
// This is the paper's ROCA when b is the correct answer. An outcome with
// zero mass ranks after every outcome with mass.
func (d Dist) Rank(b bitstring.Bits) int {
	pb := d.P[b]
	rank := 1
	for o, p := range d.P {
		if o == b {
			continue
		}
		if p > pb || (p == pb && o.Less(b)) {
			rank++
		}
	}
	if pb == 0 {
		// b itself had no mass: it ties with every other zero-mass string,
		// so place it just past the observed outcomes.
		rank = len(d.P) + 1
		if _, seen := d.P[b]; seen {
			rank = len(d.P)
		}
	}
	return rank
}

// Sampler draws outcomes from a fixed distribution using the alias-free
// inverse-CDF method over the deterministic outcome order.
type Sampler struct {
	outcomes []bitstring.Bits
	cdf      []float64
}

// NewSampler prepares d for repeated sampling. It panics if d has no mass.
func NewSampler(d Dist) *Sampler {
	outs := d.Outcomes()
	if len(outs) == 0 {
		panic("dist: sampling from empty distribution")
	}
	cdf := make([]float64, len(outs))
	var acc float64
	for i, b := range outs {
		acc += d.P[b]
		cdf[i] = acc
	}
	if acc <= 0 {
		panic("dist: sampling from zero-mass distribution")
	}
	// Guard against floating-point undershoot so Sample never falls off
	// the end of the table.
	cdf[len(cdf)-1] = math.Max(cdf[len(cdf)-1], acc)
	return &Sampler{outcomes: outs, cdf: cdf}
}

// Sample draws one outcome using rng.
func (s *Sampler) Sample(rng *rand.Rand) bitstring.Bits {
	u := rng.Float64() * s.cdf[len(s.cdf)-1]
	i := sort.SearchFloat64s(s.cdf, u)
	if i >= len(s.outcomes) {
		i = len(s.outcomes) - 1
	}
	return s.outcomes[i]
}

// SampleCounts draws n outcomes and tallies them.
func (s *Sampler) SampleCounts(rng *rand.Rand, n int) *Counts {
	c := NewCounts(s.outcomes[0].Width())
	for i := 0; i < n; i++ {
		c.Add(s.Sample(rng), 1)
	}
	return c
}

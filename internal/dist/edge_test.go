package dist

import (
	"math"
	"testing"

	"biasmit/internal/bitstring"
)

// The resilience layer's partial-shot salvage merges per-slice logs
// where some slices may be empty (a faulted slice retried into a fresh
// one) and slice totals are unequal (the tail slice is short). These
// tests pin the merge/normalize semantics that salvage depends on.

func TestMergeEmptyCounts(t *testing.T) {
	b01 := bitstring.MustParse("01")
	c := NewCounts(2)
	c.Add(b01, 5)

	// Merging an empty histogram is a no-op.
	c.Merge(NewCounts(2))
	if c.Total() != 5 || c.Get(b01) != 5 {
		t.Fatalf("merge of empty changed counts: total=%d", c.Total())
	}

	// Merging into an empty histogram copies everything.
	dst := NewCounts(2)
	dst.Merge(c)
	if dst.Total() != 5 || dst.Get(b01) != 5 {
		t.Fatalf("merge into empty: total=%d get=%d", dst.Total(), dst.Get(b01))
	}

	// The zero value is a usable merge target too.
	var zero Counts
	zeroSrc := NewCounts(0)
	zero.Merge(zeroSrc)
	if zero.Total() != 0 {
		t.Fatalf("zero-value merge total = %d", zero.Total())
	}
}

func TestMergeAccumulatesRepeatedOutcomes(t *testing.T) {
	b := bitstring.MustParse("11")
	acc := NewCounts(2)
	for i := 0; i < 3; i++ {
		part := NewCounts(2)
		part.Add(b, 7)
		acc.Merge(part)
	}
	if acc.Get(b) != 21 || acc.Total() != 21 {
		t.Fatalf("accumulated %d/%d, want 21/21", acc.Get(b), acc.Total())
	}
}

func TestEmptyCountsDistAndNormalize(t *testing.T) {
	empty := NewCounts(3)
	d := empty.Dist()
	if len(d.P) != 0 || d.Mass() != 0 {
		t.Fatalf("empty counts produced mass %v", d.Mass())
	}
	// Normalizing a zero-mass distribution must not divide by zero.
	n := d.Normalize()
	if n.Mass() != 0 || len(n.P) != 0 {
		t.Fatalf("normalized zero-mass dist has mass %v", n.Mass())
	}
}

func TestNormalizeRescalesToUnitMass(t *testing.T) {
	d := NewDist(1)
	d.P[bitstring.MustParse("0")] = 0.2
	d.P[bitstring.MustParse("1")] = 0.6
	n := d.Normalize()
	if math.Abs(n.Mass()-1) > 1e-12 {
		t.Fatalf("normalized mass %v", n.Mass())
	}
	if math.Abs(n.Prob(bitstring.MustParse("1"))-0.75) > 1e-12 {
		t.Fatalf("P(1) = %v, want 0.75", n.Prob(bitstring.MustParse("1")))
	}
	// The input is untouched.
	if d.Mass() != 0.8 {
		t.Fatalf("Normalize mutated its receiver: mass %v", d.Mass())
	}
}

func TestMixIgnoresZeroTrialGroups(t *testing.T) {
	b0 := bitstring.MustParse("0")
	b1 := bitstring.MustParse("1")
	loaded := NewDist(1)
	loaded.P[b0] = 1
	empty := NewDist(1) // a group whose every trial was lost

	// Weight 0 silences a group even if it carries mass; an empty group
	// with positive weight contributes nothing but still dilutes — SIM
	// weights groups by trial count, so a zero-trial group gets weight 0
	// and must drop out entirely.
	out := Mix([]Dist{loaded, empty}, []float64{40, 0})
	if math.Abs(out.Prob(b0)-1) > 1e-12 || out.Prob(b1) != 0 {
		t.Fatalf("zero-weight group leaked into the mix: %v", out.P)
	}

	// All-zero weights yield the empty distribution, not NaNs.
	out = Mix([]Dist{loaded, empty}, []float64{0, 0})
	if len(out.P) != 0 || out.Mass() != 0 {
		t.Fatalf("all-zero-weight mix has mass %v", out.Mass())
	}
}

func TestMixReweightsUnequalShotCounts(t *testing.T) {
	// Two measurement groups with unequal surviving shot counts: 300
	// trials all-|0⟩ and 100 trials all-|1⟩. Mixing their normalized
	// distributions weighted by trial count must equal the distribution
	// of the merged raw logs — the identity partial-shot salvage relies
	// on when a faulted group comes back short.
	b0 := bitstring.MustParse("0")
	b1 := bitstring.MustParse("1")
	g1 := NewCounts(1)
	g1.Add(b0, 300)
	g2 := NewCounts(1)
	g2.Add(b1, 100)

	mixed := Mix(
		[]Dist{g1.Dist(), g2.Dist()},
		[]float64{float64(g1.Total()), float64(g2.Total())},
	)

	merged := NewCounts(1)
	merged.Merge(g1)
	merged.Merge(g2)
	want := merged.Dist()

	for _, b := range []bitstring.Bits{b0, b1} {
		if math.Abs(mixed.Prob(b)-want.Prob(b)) > 1e-12 {
			t.Fatalf("P(%v): mixed %v, merged %v", b, mixed.Prob(b), want.Prob(b))
		}
	}
	if math.Abs(mixed.Prob(b0)-0.75) > 1e-12 {
		t.Fatalf("P(0) = %v, want 0.75", mixed.Prob(b0))
	}
}

package device

import (
	"math"
	"testing"

	"biasmit/internal/bitstring"
	"biasmit/internal/metrics"
	"biasmit/internal/noise"
)

func TestFactoryModelsValidate(t *testing.T) {
	for _, d := range AllMachines() {
		if err := d.Validate(); err != nil {
			t.Errorf("%s: %v", d.Name, err)
		}
	}
}

func TestTable1MeasurementErrorStats(t *testing.T) {
	// Paper Table 1: readout error min/avg/max per machine.
	cases := []struct {
		dev           *Device
		min, avg, max float64
	}{
		{IBMQX2(), 0.012, 0.038, 0.128},
		{IBMQX4(), 0.034, 0.082, 0.207},
		{IBMQMelbourne(), 0.022, 0.0812, 0.310},
	}
	for _, c := range cases {
		min, avg, max := c.dev.MeasurementErrorStats()
		if math.Abs(min-c.min) > 0.004 {
			t.Errorf("%s min = %v, want ≈ %v", c.dev.Name, min, c.min)
		}
		if math.Abs(avg-c.avg) > 0.006 {
			t.Errorf("%s avg = %v, want ≈ %v", c.dev.Name, avg, c.avg)
		}
		if math.Abs(max-c.max) > 0.012 {
			t.Errorf("%s max = %v, want ≈ %v", c.dev.Name, max, c.max)
		}
	}
}

func TestIBMQX2BiasStronglyHammingCorrelated(t *testing.T) {
	// Paper Fig 4: BMS vs Hamming weight correlation ≈ −0.93 on ibmqx2.
	d := IBMQX2()
	bms := d.ReadoutModel().ExactBMS()
	r, err := metrics.Pearson(metrics.HammingWeightSeries(5), bms)
	if err != nil {
		t.Fatal(err)
	}
	if r > -0.85 {
		t.Errorf("ibmqx2 correlation = %v, want < -0.85", r)
	}
	// All-zeros must be the strongest state, all-ones the weakest among
	// the extremes, with a substantial relative gap (paper: 0.38 relative).
	if bms[0] <= bms[31] {
		t.Errorf("BMS(00000)=%v <= BMS(11111)=%v", bms[0], bms[31])
	}
	// Readout-only gap; the end-to-end Fig 4 experiment (with state
	// preparation and gate decay) widens it further.
	if ratio := bms[31] / bms[0]; ratio > 0.92 {
		t.Errorf("relative BMS of 11111 = %v, want a visible gap", ratio)
	}
}

func TestIBMQX4BiasIsArbitrary(t *testing.T) {
	// Paper §6.1: on ibmqx4 measurement strength is NOT strongly
	// correlated with Hamming weight (non-monotone).
	d := IBMQX4()
	bms := d.ReadoutModel().ExactBMS()
	r, err := metrics.Pearson(metrics.HammingWeightSeries(5), bms)
	if err != nil {
		t.Fatal(err)
	}
	x2bms := IBMQX2().ReadoutModel().ExactBMS()
	rX2, err := metrics.Pearson(metrics.HammingWeightSeries(5), x2bms)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r) >= math.Abs(rX2) {
		t.Errorf("ibmqx4 |corr| %v not weaker than ibmqx2 %v", r, rX2)
	}
	// Non-monotone: some weight-1 state must be weaker than some
	// weight-3 state.
	minW1, maxW3 := 1.0, 0.0
	for _, b := range bitstring.All(5) {
		s := bms[b.Uint64()]
		switch b.HammingWeight() {
		case 1:
			if s < minW1 {
				minW1 = s
			}
		case 3:
			if s > maxW3 {
				maxW3 = s
			}
		}
	}
	if minW1 >= maxW3 {
		t.Errorf("ibmqx4 bias is monotone: min(w=1)=%v >= max(w=3)=%v", minW1, maxW3)
	}
	// The strongest state need not be all-zeros on this machine, but
	// all-ones should still be weak overall.
	if bms[31] > bms[0] {
		t.Errorf("BMS(11111)=%v > BMS(00000)=%v", bms[31], bms[0])
	}
}

func TestMelbourneBiasMonotoneByWeight(t *testing.T) {
	// Paper Fig 5: average relative BMS decreases with Hamming weight on
	// melbourne (shown for 10 qubits; exact over the first 10 here).
	d := IBMQMelbourne()
	sub := &noise.ReadoutModel{PerQubit: d.ReadoutModel().PerQubit[:10]}
	avg := metrics.AverageByHammingWeight(sub.ExactBMS(), 10)
	for w := 1; w <= 10; w++ {
		if avg[w] >= avg[w-1] {
			t.Errorf("avg BMS at weight %d (%v) >= weight %d (%v)", w, avg[w], w-1, avg[w-1])
		}
	}
	rel := metrics.Relative(avg)
	if rel[10] > 0.6 || rel[10] < 0.2 {
		t.Errorf("relative BMS at weight 10 = %v, paper shows ≈ 0.45", rel[10])
	}
}

func TestConnectedAndNeighbors(t *testing.T) {
	d := IBMQX2()
	if !d.Connected(0, 1) || !d.Connected(1, 0) {
		t.Error("0-1 should be connected")
	}
	if d.Connected(0, 4) {
		t.Error("0-4 should not be connected")
	}
	nb := d.Neighbors(2)
	want := []int{0, 1, 3, 4}
	if len(nb) != len(want) {
		t.Fatalf("Neighbors(2) = %v", nb)
	}
	for i := range want {
		if nb[i] != want[i] {
			t.Fatalf("Neighbors(2) = %v, want %v", nb, want)
		}
	}
}

func TestGate2Error(t *testing.T) {
	d := IBMQX2()
	if e, err := d.Gate2Error(3, 4); err != nil || e != 0.030 {
		t.Errorf("Gate2Error(3,4) = %v, %v", e, err)
	}
	if e, err := d.Gate2Error(4, 3); err != nil || e != 0.030 {
		t.Errorf("Gate2Error(4,3) = %v, %v", e, err)
	}
	if _, err := d.Gate2Error(0, 4); err == nil {
		t.Error("uncoupled pair accepted")
	}
}

func TestShortestPath(t *testing.T) {
	d := IBMQMelbourne()
	p := d.ShortestPath(0, 6)
	if len(p) != 7 || p[0] != 0 || p[6] != 6 {
		t.Errorf("path 0→6 = %v", p)
	}
	for i := 0; i+1 < len(p); i++ {
		if !d.Connected(p[i], p[i+1]) {
			t.Errorf("path step %d-%d not coupled", p[i], p[i+1])
		}
	}
	if got := d.ShortestPath(3, 3); len(got) != 1 || got[0] != 3 {
		t.Errorf("self path = %v", got)
	}
	// Cross-row path should use a rung, shorter than going around.
	p2 := d.ShortestPath(0, 13)
	if len(p2) != 3 { // 0-1-13
		t.Errorf("path 0→13 = %v, want length 3", p2)
	}
}

func TestShortestPathDisconnected(t *testing.T) {
	d := &Device{Name: "split", NumQubits: 3, Qubits: make([]Qubit, 3),
		Links: []Link{{A: 0, B: 1, Gate2Error: 0.02}}}
	if p := d.ShortestPath(0, 2); p != nil {
		t.Errorf("disconnected path = %v", p)
	}
}

func TestCloneIsDeep(t *testing.T) {
	d := IBMQX4()
	c := d.Clone()
	c.Qubits[0].T1 = 1
	c.Links[0].Gate2Error = 0.9
	c.Correlations[0].PExtra = 0.9
	if d.Qubits[0].T1 == 1 || d.Links[0].Gate2Error == 0.9 || d.Correlations[0].PExtra == 0.9 {
		t.Error("Clone shares memory with original")
	}
}

func TestCalibrateDeterministicAndBounded(t *testing.T) {
	d := IBMQX4()
	c1 := d.Calibrate(7)
	c2 := d.Calibrate(7)
	for i := range c1.Qubits {
		if c1.Qubits[i] != c2.Qubits[i] {
			t.Fatalf("cycle 7 not reproducible at qubit %d", i)
		}
	}
	c3 := d.Calibrate(8)
	same := true
	for i := range c1.Qubits {
		if c1.Qubits[i] != c3.Qubits[i] {
			same = false
		}
	}
	if same {
		t.Error("cycles 7 and 8 identical")
	}
	// Jitter bounded by driftFraction.
	for i := range c1.Qubits {
		rel := math.Abs(c1.Qubits[i].Readout.P01-d.Qubits[i].Readout.P01) / math.Max(d.Qubits[i].Readout.P01, 1e-12)
		if rel > driftFraction+1e-9 {
			t.Errorf("qubit %d P01 drift %v exceeds %v", i, rel, driftFraction)
		}
	}
	if err := c1.Validate(); err != nil {
		t.Errorf("calibrated device invalid: %v", err)
	}
}

func TestCalibrationBiasIsRepeatable(t *testing.T) {
	// Paper §6.1: ibmqx4's arbitrary bias is repeatable across 100
	// calibration cycles. The *ordering* of weak states should be highly
	// stable: the weakest state of the nominal model stays weak.
	d := IBMQX4()
	nominal := d.ReadoutModel().ExactBMS()
	weakest := 0
	for i, s := range nominal {
		if s < nominal[weakest] {
			weakest = i
		}
	}
	for cycle := 0; cycle < 100; cycle++ {
		bms := d.Calibrate(cycle).ReadoutModel().ExactBMS()
		// The nominal weakest state must remain in the bottom quartile.
		worse := 0
		for _, s := range bms {
			if s < bms[weakest] {
				worse++
			}
		}
		if worse > 8 {
			t.Fatalf("cycle %d: nominal weakest state ranks %d from bottom", cycle, worse+1)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"ibmqx2", "ibmqx4", "ibmq-melbourne", "melbourne", "ibmq_melbourne"} {
		if _, ok := ByName(name); !ok {
			t.Errorf("ByName(%q) failed", name)
		}
	}
	if _, ok := ByName("ibmq-tokyo"); ok {
		t.Error("unknown machine accepted")
	}
}

func TestValidateRejectsBadDevices(t *testing.T) {
	good := IBMQX2()
	cases := []func(d *Device){
		func(d *Device) { d.NumQubits = 0 },
		func(d *Device) { d.Qubits = d.Qubits[:2] },
		func(d *Device) { d.Qubits[0].T1 = -1 },
		func(d *Device) { d.Qubits[0].Readout.P01 = 2 },
		func(d *Device) { d.Qubits[0].Gate1Error = 1.5 },
		func(d *Device) { d.Links[0].A = d.Links[0].B },
		func(d *Device) { d.Links[0].B = 99 },
		func(d *Device) { d.Links[0].Gate2Error = -0.1 },
		func(d *Device) {
			d.Correlations = []noise.CorrelatedFlip{{Trigger: 0, Target: 0, PExtra: 0.1}}
		},
	}
	for i, mutate := range cases {
		d := good.Clone()
		mutate(d)
		if d.Validate() == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestReadoutForTargetHitsEffectiveAverage(t *testing.T) {
	for _, c := range []struct{ avg, ratio, dur, t1 float64 }{
		{0.04, 3, 1.0, 60},
		{0.10, 2, 1.4, 50},
		{0.05, 0.5, 1.0, 55},
	} {
		r := readoutForTarget(c.avg, c.ratio, c.dur, c.t1)
		eff := r.WithT1Decay(c.dur, c.t1)
		if got := eff.Average(); math.Abs(got-c.avg) > 1e-9 {
			t.Errorf("effective avg = %v, want %v (case %+v)", got, c.avg, c)
		}
		if got := eff.P10 / eff.P01; math.Abs(got-c.ratio) > 1e-6 {
			t.Errorf("effective ratio = %v, want %v (case %+v)", got, c.ratio, c)
		}
	}
}

func TestCheapestPathAvoidsNoisyLink(t *testing.T) {
	// Triangle 0-1-2 where the direct 0-2 link is terrible: Dijkstra must
	// detour through 1.
	d := &Device{Name: "tri", NumQubits: 3, Qubits: make([]Qubit, 3), Links: []Link{
		{A: 0, B: 1, Gate2Error: 0.01},
		{A: 1, B: 2, Gate2Error: 0.01},
		{A: 0, B: 2, Gate2Error: 0.40},
	}}
	for i := range d.Qubits {
		d.Qubits[i].T1 = 50
	}
	got := d.CheapestPath(0, 2)
	want := []int{0, 1, 2}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Errorf("CheapestPath = %v, want %v", got, want)
	}
	// Hop-count routing takes the direct link.
	if hops := d.ShortestPath(0, 2); len(hops) != 2 {
		t.Errorf("ShortestPath = %v", hops)
	}
	// Self path and disconnected cases.
	if p := d.CheapestPath(1, 1); len(p) != 1 || p[0] != 1 {
		t.Errorf("self path = %v", p)
	}
	split := &Device{Name: "split", NumQubits: 3, Qubits: make([]Qubit, 3),
		Links: []Link{{A: 0, B: 1, Gate2Error: 0.02}}}
	if p := split.CheapestPath(0, 2); p != nil {
		t.Errorf("disconnected cheapest path = %v", p)
	}
}

func TestCheapestPathMatchesShortestOnUniformLinks(t *testing.T) {
	d := IBMQMelbourne()
	// Make all links equal so both routers agree on path length.
	for i := range d.Links {
		d.Links[i].Gate2Error = 0.03
	}
	for _, pair := range [][2]int{{0, 6}, {0, 13}, {7, 6}} {
		s := d.ShortestPath(pair[0], pair[1])
		c := d.CheapestPath(pair[0], pair[1])
		if len(s) != len(c) {
			t.Errorf("%v: shortest %v vs cheapest %v", pair, s, c)
		}
	}
}

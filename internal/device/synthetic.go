package device

import (
	"fmt"
	"math/rand"

	"biasmit/internal/noise"
)

// SyntheticSpec parameterizes a generated machine model. The zero value
// of any field selects a realistic default, so SyntheticSpec{NumQubits: 16}
// already produces a usable device.
type SyntheticSpec struct {
	NumQubits int
	// Topology selects the coupling graph: "line", "ring", "ladder"
	// (default), or "grid" (nearest square).
	Topology string
	// MeanReadoutError is the average effective measurement error across
	// qubits (default 0.05); per-qubit errors spread log-normally around
	// it, with the worst qubit a few times the mean (as on real
	// calibration sheets).
	MeanReadoutError float64
	// Asymmetry is the mean effective P10/P01 ratio (default 3.0,
	// matching superconducting readout).
	Asymmetry float64
	// Crosstalk adds this many random correlated-readout pairs between
	// coupled qubits with 2-6% extra flip probability.
	Crosstalk int
	// Seed drives all sampled parameters; equal specs with equal seeds
	// build identical machines.
	Seed int64
}

func (s SyntheticSpec) withDefaults() SyntheticSpec {
	if s.Topology == "" {
		s.Topology = "ladder"
	}
	if s.MeanReadoutError == 0 {
		s.MeanReadoutError = 0.05
	}
	if s.Asymmetry == 0 {
		s.Asymmetry = 3.0
	}
	return s
}

// Synthetic generates a device model from the spec: realistic T1 spread,
// log-normal readout errors centred on the requested mean, gate errors
// in the paper's reported ranges, and the chosen topology. It exists for
// scaling studies beyond the three paper machines — e.g. exercising AWCT
// characterization or SIM/AIM on 16–20 qubit registers.
func Synthetic(spec SyntheticSpec) (*Device, error) {
	spec = spec.withDefaults()
	if spec.NumQubits < 2 {
		return nil, fmt.Errorf("device: synthetic machine needs at least 2 qubits, got %d", spec.NumQubits)
	}
	if spec.NumQubits > 24 {
		return nil, fmt.Errorf("device: synthetic machine capped at 24 qubits, got %d", spec.NumQubits)
	}
	if spec.MeanReadoutError < 0 || spec.MeanReadoutError > 0.4 {
		return nil, fmt.Errorf("device: mean readout error %v out of (0, 0.4]", spec.MeanReadoutError)
	}
	rng := rand.New(rand.NewSource(spec.Seed))

	d := &Device{
		Name:            fmt.Sprintf("synthetic-%s-%d", spec.Topology, spec.NumQubits),
		NumQubits:       spec.NumQubits,
		Gate1Duration:   defaultGate1Duration,
		Gate2Duration:   defaultGate2Duration,
		ReadoutDuration: defaultReadoutDuration,
	}
	for q := 0; q < spec.NumQubits; q++ {
		t1 := 45 + 30*rng.Float64() // 45–75 µs
		// Log-normal-ish spread: most qubits near the mean, a heavy tail.
		e := spec.MeanReadoutError * (0.4 + 1.2*rng.Float64())
		if rng.Float64() < 0.1 {
			e *= 2.5 + 2*rng.Float64() // the occasional terrible qubit
		}
		if e > 0.45 {
			e = 0.45
		}
		ratio := spec.Asymmetry * (0.6 + 0.8*rng.Float64())
		d.Qubits = append(d.Qubits, Qubit{
			T1:         t1,
			T2:         t1 * (0.6 + 0.3*rng.Float64()),
			Readout:    readoutForTarget(e, ratio, d.ReadoutDuration, t1),
			Gate1Error: 0.001 + 0.002*rng.Float64(),
		})
	}

	edges, err := topologyEdges(spec.Topology, spec.NumQubits)
	if err != nil {
		return nil, err
	}
	for _, e := range edges {
		d.Links = append(d.Links, Link{A: e[0], B: e[1], Gate2Error: 0.02 + 0.03*rng.Float64()})
	}

	for i := 0; i < spec.Crosstalk && len(d.Links) > 0; i++ {
		l := d.Links[rng.Intn(len(d.Links))]
		trigger, target := l.A, l.B
		if rng.Intn(2) == 0 {
			trigger, target = target, trigger
		}
		d.Correlations = append(d.Correlations, noise.CorrelatedFlip{
			Trigger:      trigger,
			TriggerState: true,
			Target:       target,
			PExtra:       0.02 + 0.04*rng.Float64(),
		})
	}

	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("device: generated machine invalid: %w", err)
	}
	return d, nil
}

// topologyEdges builds the coupling list for a named topology.
func topologyEdges(topology string, n int) ([][2]int, error) {
	var edges [][2]int
	switch topology {
	case "line":
		for q := 0; q+1 < n; q++ {
			edges = append(edges, [2]int{q, q + 1})
		}
	case "ring":
		for q := 0; q+1 < n; q++ {
			edges = append(edges, [2]int{q, q + 1})
		}
		if n > 2 {
			edges = append(edges, [2]int{n - 1, 0})
		}
	case "ladder":
		half := n / 2
		for q := 0; q+1 < half; q++ {
			edges = append(edges, [2]int{q, q + 1})
		}
		for q := half; q+1 < n; q++ {
			edges = append(edges, [2]int{q, q + 1})
		}
		for q := 0; q < half && q+half < n; q++ {
			edges = append(edges, [2]int{q, q + half})
		}
	case "grid":
		cols := 1
		for cols*cols < n {
			cols++
		}
		for q := 0; q < n; q++ {
			r, c := q/cols, q%cols
			if c+1 < cols && q+1 < n {
				edges = append(edges, [2]int{q, q + 1})
			}
			if (r+1)*cols+c < n {
				edges = append(edges, [2]int{q, (r+1)*cols + c})
			}
		}
	default:
		return nil, fmt.Errorf("device: unknown topology %q (want line, ring, ladder, grid)", topology)
	}
	return edges, nil
}

package device

import (
	"math"
	"testing"
)

func TestSyntheticDefaults(t *testing.T) {
	d, err := Synthetic(SyntheticSpec{NumQubits: 16, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.NumQubits != 16 || len(d.Qubits) != 16 {
		t.Errorf("qubits = %d", d.NumQubits)
	}
	// Ladder default: connected graph.
	for q := 1; q < d.NumQubits; q++ {
		if d.ShortestPath(0, q) == nil {
			t.Errorf("qubit %d unreachable", q)
		}
	}
	// Mean effective readout error near the 5% default.
	_, avg, _ := d.MeasurementErrorStats()
	if avg < 0.02 || avg > 0.12 {
		t.Errorf("mean readout error = %v, want near 0.05", avg)
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	spec := SyntheticSpec{NumQubits: 10, Topology: "grid", Crosstalk: 2, Seed: 7}
	a, err := Synthetic(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Synthetic(spec)
	if err != nil {
		t.Fatal(err)
	}
	for q := range a.Qubits {
		if a.Qubits[q] != b.Qubits[q] {
			t.Fatalf("qubit %d differs between identical specs", q)
		}
	}
	c, err := Synthetic(SyntheticSpec{NumQubits: 10, Topology: "grid", Crosstalk: 2, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for q := range a.Qubits {
		if a.Qubits[q] != c.Qubits[q] {
			same = false
		}
	}
	if same {
		t.Error("different seeds built identical machines")
	}
}

func TestSyntheticTopologies(t *testing.T) {
	for _, topo := range []string{"line", "ring", "ladder", "grid"} {
		d, err := Synthetic(SyntheticSpec{NumQubits: 9, Topology: topo, Seed: 3})
		if err != nil {
			t.Fatalf("%s: %v", topo, err)
		}
		for q := 1; q < 9; q++ {
			if d.ShortestPath(0, q) == nil {
				t.Errorf("%s: qubit %d unreachable", topo, q)
			}
		}
	}
	// Ring has one more edge than line.
	line, _ := Synthetic(SyntheticSpec{NumQubits: 6, Topology: "line", Seed: 4})
	ring, _ := Synthetic(SyntheticSpec{NumQubits: 6, Topology: "ring", Seed: 4})
	if len(ring.Links) != len(line.Links)+1 {
		t.Errorf("ring %d links vs line %d", len(ring.Links), len(line.Links))
	}
}

func TestSyntheticCrosstalk(t *testing.T) {
	d, err := Synthetic(SyntheticSpec{NumQubits: 8, Crosstalk: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Correlations) != 3 {
		t.Errorf("correlations = %d", len(d.Correlations))
	}
	for _, c := range d.Correlations {
		if !d.Connected(c.Trigger, c.Target) {
			t.Errorf("crosstalk %d->%d not on a coupled pair", c.Trigger, c.Target)
		}
	}
}

func TestSyntheticMeanReadoutTracksSpec(t *testing.T) {
	lo, err := Synthetic(SyntheticSpec{NumQubits: 20, MeanReadoutError: 0.02, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	hi, err := Synthetic(SyntheticSpec{NumQubits: 20, MeanReadoutError: 0.15, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	_, avgLo, _ := lo.MeasurementErrorStats()
	_, avgHi, _ := hi.MeasurementErrorStats()
	if avgHi <= avgLo*2 {
		t.Errorf("mean error did not scale: %v vs %v", avgLo, avgHi)
	}
	if math.IsNaN(avgHi) || math.IsNaN(avgLo) {
		t.Error("NaN stats")
	}
}

func TestSyntheticValidation(t *testing.T) {
	cases := []SyntheticSpec{
		{NumQubits: 1},
		{NumQubits: 30},
		{NumQubits: 8, Topology: "torus"},
		{NumQubits: 8, MeanReadoutError: 0.9},
	}
	for i, spec := range cases {
		if _, err := Synthetic(spec); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

// Package device models NISQ machines: a coupling graph plus per-qubit
// calibration data (T1, readout error, gate errors), mirroring the
// calibration sheets IBM publishes for its cloud devices.
//
// Three factory models reproduce the machines the paper evaluates —
// ibmqx2, ibmqx4, and ibmq-melbourne — with readout error statistics
// matched to the paper's Table 1 and, for ibmqx4, the correlated readout
// crosstalk that produces its "arbitrary" (non-Hamming-monotone) bias
// (paper §6.1, Fig 11). A deterministic drift model generates
// per-calibration-cycle variations so the repeatability experiments can
// be expressed.
package device

import (
	"fmt"
	"math"
	"math/rand"

	"biasmit/internal/noise"
)

// Qubit is the calibration record of one physical qubit.
type Qubit struct {
	T1         float64            // relaxation time, µs
	T2         float64            // dephasing time, µs (recorded; not used by the trajectory model)
	Readout    noise.ReadoutError // bare discrimination error, before readout-pulse T1 decay
	Gate1Error float64            // single-qubit gate depolarizing probability
}

// Link is a calibrated two-qubit interaction.
type Link struct {
	A, B       int
	Gate2Error float64 // two-qubit gate depolarizing probability
}

// Device is a machine model.
type Device struct {
	Name      string
	NumQubits int
	Qubits    []Qubit
	Links     []Link
	// Correlations are readout crosstalk terms (ibmqx4's arbitrary bias).
	Correlations []noise.CorrelatedFlip
	// Durations in µs. ReadoutDuration drives the 1→0 relaxation during
	// measurement that creates the paper's state-dependent bias.
	Gate1Duration   float64
	Gate2Duration   float64
	ReadoutDuration float64
}

// Validate checks structural consistency of the model.
func (d *Device) Validate() error {
	if d.NumQubits < 1 {
		return fmt.Errorf("device %s: no qubits", d.Name)
	}
	if len(d.Qubits) != d.NumQubits {
		return fmt.Errorf("device %s: %d qubit records for %d qubits", d.Name, len(d.Qubits), d.NumQubits)
	}
	for i, q := range d.Qubits {
		if err := q.Readout.Validate(); err != nil {
			return fmt.Errorf("device %s qubit %d: %w", d.Name, i, err)
		}
		if q.T1 <= 0 {
			return fmt.Errorf("device %s qubit %d: T1 %v", d.Name, i, q.T1)
		}
		if q.Gate1Error < 0 || q.Gate1Error > 1 {
			return fmt.Errorf("device %s qubit %d: gate error %v", d.Name, i, q.Gate1Error)
		}
	}
	for _, l := range d.Links {
		if l.A < 0 || l.A >= d.NumQubits || l.B < 0 || l.B >= d.NumQubits || l.A == l.B {
			return fmt.Errorf("device %s: bad link %d-%d", d.Name, l.A, l.B)
		}
		if l.Gate2Error < 0 || l.Gate2Error > 1 {
			return fmt.Errorf("device %s link %d-%d: gate error %v", d.Name, l.A, l.B, l.Gate2Error)
		}
	}
	for _, c := range d.Correlations {
		if err := c.Validate(d.NumQubits); err != nil {
			return fmt.Errorf("device %s: %w", d.Name, err)
		}
	}
	return nil
}

// Connected reports whether qubits a and b share a calibrated link.
func (d *Device) Connected(a, b int) bool {
	for _, l := range d.Links {
		if (l.A == a && l.B == b) || (l.A == b && l.B == a) {
			return true
		}
	}
	return false
}

// Neighbors returns the qubits directly coupled to q, ascending.
func (d *Device) Neighbors(q int) []int {
	var out []int
	for _, l := range d.Links {
		switch q {
		case l.A:
			out = append(out, l.B)
		case l.B:
			out = append(out, l.A)
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Gate2Error returns the calibrated two-qubit error of the (a,b) link,
// or an error if the qubits are not coupled.
func (d *Device) Gate2Error(a, b int) (float64, error) {
	for _, l := range d.Links {
		if (l.A == a && l.B == b) || (l.A == b && l.B == a) {
			return l.Gate2Error, nil
		}
	}
	return 0, fmt.Errorf("device %s: qubits %d and %d are not coupled", d.Name, a, b)
}

// ShortestPath returns a minimal-hop qubit path from a to b on the
// coupling graph (inclusive of both endpoints), for SWAP routing.
// It returns nil if no path exists.
func (d *Device) ShortestPath(a, b int) []int {
	if a == b {
		return []int{a}
	}
	prev := make([]int, d.NumQubits)
	for i := range prev {
		prev[i] = -1
	}
	prev[a] = a
	queue := []int{a}
	for len(queue) > 0 {
		q := queue[0]
		queue = queue[1:]
		for _, nb := range d.Neighbors(q) {
			if prev[nb] != -1 {
				continue
			}
			prev[nb] = q
			if nb == b {
				var path []int
				for cur := b; cur != a; cur = prev[cur] {
					path = append(path, cur)
				}
				path = append(path, a)
				for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
					path[i], path[j] = path[j], path[i]
				}
				return path
			}
			queue = append(queue, nb)
		}
	}
	return nil
}

// CheapestPath returns the qubit path from a to b minimizing accumulated
// two-qubit gate error (Dijkstra over edge weights −ln(1−error)), for
// noise-aware SWAP routing: a longer path over clean links can beat a
// short path through a noisy one. Returns nil if no path exists.
func (d *Device) CheapestPath(a, b int) []int {
	if a == b {
		return []int{a}
	}
	const unreached = math.MaxFloat64
	distTo := make([]float64, d.NumQubits)
	prev := make([]int, d.NumQubits)
	visited := make([]bool, d.NumQubits)
	for i := range distTo {
		distTo[i] = unreached
		prev[i] = -1
	}
	distTo[a] = 0
	for {
		// Extract the nearest unvisited node (linear scan: registers are
		// tiny).
		u, best := -1, unreached
		for i, dv := range distTo {
			if !visited[i] && dv < best {
				u, best = i, dv
			}
		}
		if u == -1 {
			return nil // b unreachable
		}
		if u == b {
			break
		}
		visited[u] = true
		for _, nb := range d.Neighbors(u) {
			if visited[nb] {
				continue
			}
			e, err := d.Gate2Error(u, nb)
			if err != nil {
				continue
			}
			w := 1e-12 // keep zero-error links from collapsing to free hops
			if e < 1 {
				w += -math.Log(1 - e)
			} else {
				w = unreached / 4
			}
			if alt := distTo[u] + w; alt < distTo[nb] {
				distTo[nb] = alt
				prev[nb] = u
			}
		}
	}
	var path []int
	for cur := b; cur != -1; cur = prev[cur] {
		path = append(path, cur)
		if cur == a {
			break
		}
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	if len(path) == 0 || path[0] != a {
		return nil
	}
	return path
}

// ReadoutModel returns the effective classical readout channel of the
// device: each qubit's bare discrimination error with relaxation during
// the readout pulse folded into P10, plus any crosstalk correlations.
func (d *Device) ReadoutModel() *noise.ReadoutModel {
	per := make([]noise.ReadoutError, d.NumQubits)
	for i, q := range d.Qubits {
		per[i] = q.Readout.WithT1Decay(d.ReadoutDuration, q.T1)
	}
	return &noise.ReadoutModel{
		PerQubit:     per,
		Correlations: append([]noise.CorrelatedFlip(nil), d.Correlations...),
	}
}

// MeasurementErrorStats returns the min, mean, and max effective
// measurement error across qubits — the paper's Table 1 summary.
func (d *Device) MeasurementErrorStats() (min, avg, max float64) {
	model := d.ReadoutModel()
	min = 1.0
	for _, r := range model.PerQubit {
		e := r.Average()
		if e < min {
			min = e
		}
		if e > max {
			max = e
		}
		avg += e
	}
	avg /= float64(len(model.PerQubit))
	return min, avg, max
}

// Clone returns a deep copy of the device.
func (d *Device) Clone() *Device {
	out := *d
	out.Qubits = append([]Qubit(nil), d.Qubits...)
	out.Links = append([]Link(nil), d.Links...)
	out.Correlations = append([]noise.CorrelatedFlip(nil), d.Correlations...)
	return &out
}

// driftFraction bounds the relative jitter applied per calibration cycle.
const driftFraction = 0.08

// Calibrate returns the device as it would appear in the given
// calibration cycle: every calibrated value jittered by a deterministic
// multiplicative factor within ±driftFraction. The jitter is a pure
// function of (device name, cycle), so re-running a cycle reproduces the
// same machine — this models the paper's observation that ibmqx4's bias
// was repeatable across 100 calibration cycles over 35 days, while still
// differing from cycle to cycle.
func (d *Device) Calibrate(cycle int) *Device {
	out := d.Clone()
	out.Name = fmt.Sprintf("%s@cycle%d", d.Name, cycle)
	rng := rand.New(rand.NewSource(driftSeed(d.Name, cycle)))
	jitter := func(v float64) float64 {
		f := 1 + driftFraction*(2*rng.Float64()-1)
		nv := v * f
		if nv < 0 {
			nv = 0
		}
		if nv > 1 && v <= 1 {
			nv = 1
		}
		return nv
	}
	for i := range out.Qubits {
		q := &out.Qubits[i]
		q.T1 *= 1 + driftFraction*(2*rng.Float64()-1)
		q.Readout.P01 = jitter(q.Readout.P01)
		q.Readout.P10 = jitter(q.Readout.P10)
		q.Gate1Error = jitter(q.Gate1Error)
	}
	for i := range out.Links {
		out.Links[i].Gate2Error = jitter(out.Links[i].Gate2Error)
	}
	for i := range out.Correlations {
		out.Correlations[i].PExtra = jitter(out.Correlations[i].PExtra)
	}
	return out
}

// driftSeed derives a deterministic seed from the device name and cycle.
func driftSeed(name string, cycle int) int64 {
	h := uint64(1469598103934665603) // FNV-1a offset basis
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	h ^= uint64(cycle) * 0x9E3779B97F4A7C15
	h *= 1099511628211
	return int64(h & (1<<63 - 1))
}

package device

import "biasmit/internal/noise"

// Machine construction constants shared by the factory models. Durations
// are in µs and follow published IBM specifications of the era: tens of
// nanoseconds for single-qubit pulses, a few hundred for CNOTs, and a
// microsecond-scale readout pulse (the window in which 1→0 relaxation
// biases measurement).
const (
	defaultGate1Duration   = 0.06
	defaultGate2Duration   = 0.30
	defaultReadoutDuration = 1.0
)

// readoutForTarget builds the bare per-qubit discrimination error so that
// the *effective* readout error (after relaxation during a readout pulse
// of duration dur with the given T1) has mean avgErr and asymmetry
// ratio = effective P10 / P01. ratio > 1 is the normal IBM regime;
// ratio < 1 models the inverted-asymmetry qubits seen on ibmqx4.
func readoutForTarget(avgErr, ratio, dur, t1 float64) noise.ReadoutError {
	p01 := 2 * avgErr / (1 + ratio)
	p10eff := ratio * p01
	pd := noise.DecayProb(dur, t1)
	// Invert ReadoutError.WithT1Decay: p10eff = pd(1-p01) + (1-pd)·bare.
	bare := (p10eff - pd*(1-p01)) / (1 - pd)
	if bare < 0 {
		bare = 0
	}
	if bare > 1 {
		bare = 1
	}
	return noise.ReadoutError{P01: p01, P10: bare}
}

// IBMQX2 models the 5-qubit ibmqx2 (Yorktown) machine: the paper's most
// reliable device, with strongly Hamming-correlated readout bias
// (Fig 4: BMS correlation with Hamming weight ≈ −0.93) and Table 1
// readout stats min 1.2%, avg 3.8%, max 12.8%.
func IBMQX2() *Device {
	t1 := []float64{62, 58, 65, 55, 52}
	// Per-qubit effective measurement error averages to the Table 1
	// stats: min 1.2%, mean 3.8%, max 12.8%. The four good qubits have
	// the strong 1→0 asymmetry that drives the Hamming-weight bias;
	// the one poor qubit has a large but nearly symmetric error, so the
	// weight correlation stays strong (Fig 4: r ≈ −0.93) instead of
	// being dominated by a single qubit.
	avgErr := []float64{0.012, 0.014, 0.016, 0.020, 0.128}
	ratios := []float64{6.0, 6.0, 6.0, 6.0, 1.35}
	d := &Device{
		Name:            "ibmqx2",
		NumQubits:       5,
		Gate1Duration:   defaultGate1Duration,
		Gate2Duration:   defaultGate2Duration,
		ReadoutDuration: defaultReadoutDuration,
	}
	for i := 0; i < 5; i++ {
		d.Qubits = append(d.Qubits, Qubit{
			T1:         t1[i],
			T2:         t1[i] * 0.8,
			Readout:    readoutForTarget(avgErr[i], ratios[i], d.ReadoutDuration, t1[i]),
			Gate1Error: 0.0010 + 0.0002*float64(i),
		})
	}
	// Yorktown "bow-tie" coupling.
	d.Links = []Link{
		{A: 0, B: 1, Gate2Error: 0.021},
		{A: 0, B: 2, Gate2Error: 0.024},
		{A: 1, B: 2, Gate2Error: 0.022},
		{A: 2, B: 3, Gate2Error: 0.027},
		{A: 2, B: 4, Gate2Error: 0.025},
		{A: 3, B: 4, Gate2Error: 0.030},
	}
	return d
}

// IBMQX4 models the 5-qubit ibmqx4 (Tenerife) machine: the paper's least
// reliable device, with Table 1 readout stats min 3.4%, avg 8.2%,
// max 20.7%, and — crucially for AIM — an *arbitrary* readout bias that
// does not track Hamming weight (Fig 11): two qubits have inverted
// asymmetry (more 0→1 than 1→0 error) and readout crosstalk couples
// neighbouring qubits.
func IBMQX4() *Device {
	t1 := []float64{48, 55, 43, 51, 46}
	avgErr := []float64{0.034, 0.049, 0.056, 0.064, 0.207}
	// Mixed asymmetry ratios: qubit 1 is inverted (more 0→1 than 1→0
	// error) and the others vary widely, giving Fig 1's headline gap
	// (00000 ≈ 0.84 vs 11111 ≈ 0.62 end-to-end) without a clean
	// Hamming-weight law.
	ratios := []float64{4.0, 0.6, 3.0, 1.8, 5.0}
	d := &Device{
		Name:            "ibmqx4",
		NumQubits:       5,
		Gate1Duration:   defaultGate1Duration,
		Gate2Duration:   defaultGate2Duration,
		ReadoutDuration: defaultReadoutDuration,
	}
	for i := 0; i < 5; i++ {
		d.Qubits = append(d.Qubits, Qubit{
			T1:         t1[i],
			T2:         t1[i] * 0.7,
			Readout:    readoutForTarget(avgErr[i], ratios[i], d.ReadoutDuration, t1[i]),
			Gate1Error: 0.0018 + 0.0003*float64(i),
		})
	}
	// Tenerife coupling.
	d.Links = []Link{
		{A: 1, B: 0, Gate2Error: 0.036},
		{A: 2, B: 0, Gate2Error: 0.041},
		{A: 2, B: 1, Gate2Error: 0.038},
		{A: 3, B: 2, Gate2Error: 0.047},
		{A: 3, B: 4, Gate2Error: 0.050},
		{A: 4, B: 2, Gate2Error: 0.044},
	}
	// Readout crosstalk: the terms that make the bias arbitrary yet
	// repeatable (paper §6.1).
	// All triggers fire on the excited state, so a standard calibration
	// pass (one qubit in |1⟩ at a time) sees the bare per-qubit errors of
	// Table 1 while multi-one application states feel the crosstalk.
	d.Correlations = []noise.CorrelatedFlip{
		{Trigger: 1, TriggerState: true, Target: 2, PExtra: 0.055},
		{Trigger: 3, TriggerState: true, Target: 4, PExtra: 0.045},
		{Trigger: 0, TriggerState: true, Target: 3, PExtra: 0.035},
		{Trigger: 4, TriggerState: true, Target: 1, PExtra: 0.030},
	}
	return d
}

// IBMQMelbourne models the 14-qubit ibmq-melbourne machine: Table 1
// readout stats min 2.2%, avg 8.12%, max 31%, with the monotone
// Hamming-weight bias of Fig 5 and the deepest circuits (so gate error
// matters most, limiting SIM/AIM gains as in §7.1).
func IBMQMelbourne() *Device {
	avgErr := []float64{
		0.022, 0.028, 0.036, 0.043, 0.050, 0.056, 0.062,
		0.068, 0.074, 0.081, 0.090, 0.100, 0.117, 0.310,
	}
	t1 := []float64{66, 58, 71, 54, 62, 48, 57, 69, 52, 60, 55, 64, 50, 45}
	d := &Device{
		Name:            "ibmq-melbourne",
		NumQubits:       14,
		Gate1Duration:   defaultGate1Duration,
		Gate2Duration:   defaultGate2Duration,
		ReadoutDuration: 1.4, // slower readout chain than the 5-qubit devices
	}
	for i := 0; i < 14; i++ {
		d.Qubits = append(d.Qubits, Qubit{
			T1:         t1[i],
			T2:         t1[i] * 0.75,
			Readout:    readoutForTarget(avgErr[i], 3.0, d.ReadoutDuration, t1[i]),
			Gate1Error: 0.0015 + 0.0001*float64(i%7),
		})
	}
	// Ladder topology: two 7-qubit rows with vertical rungs.
	row := func(a, b int, e float64) Link { return Link{A: a, B: b, Gate2Error: e} }
	d.Links = []Link{
		row(0, 1, 0.031), row(1, 2, 0.035), row(2, 3, 0.029), row(3, 4, 0.042),
		row(4, 5, 0.038), row(5, 6, 0.033),
		row(7, 8, 0.036), row(8, 9, 0.044), row(9, 10, 0.032), row(10, 11, 0.040),
		row(11, 12, 0.037), row(12, 13, 0.046),
		row(1, 13, 0.048), row(2, 12, 0.039), row(3, 11, 0.034), row(4, 10, 0.043),
		row(5, 9, 0.037), row(6, 8, 0.041),
	}
	return d
}

// ByName returns the factory model with the given machine name, matching
// the identifiers used throughout the paper.
func ByName(name string) (*Device, bool) {
	switch name {
	case "ibmqx2":
		return IBMQX2(), true
	case "ibmqx4":
		return IBMQX4(), true
	case "ibmq-melbourne", "ibmq_melbourne", "melbourne":
		return IBMQMelbourne(), true
	}
	return nil, false
}

// AllMachines returns the three paper machines in publication order.
func AllMachines() []*Device {
	return []*Device{IBMQX2(), IBMQX4(), IBMQMelbourne()}
}

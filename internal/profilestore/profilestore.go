// Package profilestore caches learned RBMS profiles between mitigation
// runs, so a machine is characterized once per calibration cycle instead
// of once per request — the reuse the paper explicitly validates (§6.1:
// the bias ordering is stable across calibration cycles) and the reason
// AIM's profiling cost amortizes.
//
// The store is the serving layer's memory: profiles are keyed by
// (machine, register width, characterization method), served while
// younger than a TTL, and re-learned on demand. Concurrent requests for
// the same missing profile are deduplicated singleflight-style — one
// leader runs the characterization circuits, every other caller waits
// for its result — so a burst of AIM requests after a restart triggers
// exactly one characterization per key. A background refresh pass
// (built on internal/orchestrate) re-learns aging profiles before they
// expire, so steady-state traffic keeps hitting fresh cache entries and
// never pays the characterization latency in-line.
//
// Profiles are immutable once published: a refresh builds the new
// profile off to the side and swaps the pointer under the store lock,
// so a reader can never observe a half-written profile.
package profilestore

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"biasmit/internal/core"
	"biasmit/internal/orchestrate"
	"biasmit/internal/persist"
)

// Key identifies one cached profile: a machine name, the width of the
// characterized register, and the characterization method ("brute",
// "esct", or "awct").
type Key struct {
	Machine string `json:"machine"`
	Width   int    `json:"width"`
	Method  string `json:"method"`
}

func (k Key) String() string {
	return fmt.Sprintf("%s/%dq/%s", k.Machine, k.Width, k.Method)
}

// Profile is one immutable characterization result. The store hands the
// same *Profile to every caller; nothing mutates it after publication.
type Profile struct {
	Key       Key
	RBMS      core.RBMS
	Layout    []int // physical qubits the profile was learned on
	Shots     int   // trials per state/window spent learning it
	LearnedAt time.Time
}

// CharacterizeFunc learns a fresh profile for key by running the actual
// characterization circuits. It is called by at most one goroutine per
// key at a time; the store fills in Key and LearnedAt if left zero.
type CharacterizeFunc func(ctx context.Context, key Key) (*Profile, error)

// Journal records profile mutations durably. The store calls Put before
// a profile becomes visible to readers (write-ahead) and Delete after an
// eviction or invalidation. A Journal error never fails the serving
// path — the in-memory store stays correct and the error is counted in
// Stats.JournalErrors — because losing durability is strictly better
// than losing availability for a cache that can re-learn its contents.
type Journal interface {
	Put(rec persist.ProfileRecord) error
	Delete(key Key) error
}

// RecordOf converts a profile to its on-disk record form — the shared
// serialization (persist.ProfileRecord) that the WAL, snapshots, and
// the characterize CLI all speak.
func RecordOf(p *Profile) persist.ProfileRecord {
	return persist.ProfileRecord{
		Machine:   p.Key.Machine,
		Method:    p.Key.Method,
		Width:     p.RBMS.Width,
		Layout:    p.Layout,
		Shots:     p.Shots,
		LearnedAt: p.LearnedAt,
		Strength:  p.RBMS.Strength,
	}
}

// FromRecord reconstructs (and validates) a profile from its on-disk
// record form.
func FromRecord(rec persist.ProfileRecord) (*Profile, error) {
	rbms, err := rec.RBMS()
	if err != nil {
		return nil, err
	}
	return &Profile{
		Key:       Key{Machine: rec.Machine, Width: rec.Width, Method: rec.Method},
		RBMS:      rbms,
		Layout:    rec.Layout,
		Shots:     rec.Shots,
		LearnedAt: rec.LearnedAt,
	}, nil
}

// DefaultTTL is the freshness window when Options.TTL is zero — a
// conservative stand-in for the device's calibration cycle.
const DefaultTTL = 30 * time.Minute

// Options configures a Store.
type Options struct {
	// TTL is how long a learned profile is served before it is
	// considered stale (zero selects DefaultTTL).
	TTL time.Duration
	// RefreshAfter is the age at which Refresh proactively re-learns a
	// profile. Zero selects 2/3 of the TTL, so refreshes land before
	// entries expire and requests keep hitting fresh cache.
	RefreshAfter time.Duration
	// RefreshWorkers bounds how many keys one Refresh pass re-learns
	// concurrently (orchestrate.Map semantics; zero selects all CPUs).
	RefreshWorkers int
	// MaxProfiles bounds how many profiles the store keeps; inserting
	// past the bound evicts the least-recently-used entry. Zero means
	// unbounded.
	MaxProfiles int
	// Journal, when non-nil, records every insert/refresh/eviction
	// durably (see the Journal interface for the error contract).
	Journal Journal
	// Now overrides the clock, for tests.
	Now func() time.Time
}

// Stats counts cache outcomes since the store was created. Hits, Misses
// and Expired partition lookups; Joined counts callers deduplicated onto
// an in-flight characterization.
type Stats struct {
	Hits               uint64
	Misses             uint64
	Expired            uint64
	Joined             uint64
	Characterizations  uint64
	CharacterizeErrors uint64
	Refreshes          uint64
	RefreshErrors      uint64
	DegradedServes     uint64
	// Evictions counts profiles dropped by the MaxProfiles LRU bound;
	// JournalErrors counts journal writes that failed (the in-memory
	// store kept serving).
	Evictions     uint64
	JournalErrors uint64
	Entries       int
}

// call is one in-flight characterization; done is closed when profile
// and err are final.
type call struct {
	done    chan struct{}
	profile *Profile
	err     error
}

// Store is a concurrency-safe profile cache. Construct with New.
type Store struct {
	characterize   CharacterizeFunc
	ttl            time.Duration
	refreshAfter   time.Duration
	refreshWorkers int
	maxProfiles    int
	journal        Journal
	now            func() time.Time

	mu       sync.Mutex
	profiles map[Key]*Profile
	inflight map[Key]*call
	useSeq   uint64         // monotonic LRU clock
	lastUse  map[Key]uint64 // useSeq at last hit/publication
	gens     map[Key]uint64 // bumped whenever the profile under a key changes
	stats    Stats
}

// New returns a store that learns missing profiles with characterize.
func New(characterize CharacterizeFunc, opt Options) *Store {
	if opt.TTL <= 0 {
		opt.TTL = DefaultTTL
	}
	if opt.RefreshAfter <= 0 {
		opt.RefreshAfter = opt.TTL * 2 / 3
	}
	if opt.Now == nil {
		opt.Now = time.Now
	}
	return &Store{
		characterize:   characterize,
		ttl:            opt.TTL,
		refreshAfter:   opt.RefreshAfter,
		refreshWorkers: opt.RefreshWorkers,
		maxProfiles:    opt.MaxProfiles,
		journal:        opt.Journal,
		now:            opt.Now,
		profiles:       make(map[Key]*Profile),
		inflight:       make(map[Key]*call),
		lastUse:        make(map[Key]uint64),
		gens:           make(map[Key]uint64),
	}
}

// TTL returns the staleness threshold.
func (s *Store) TTL() time.Duration { return s.ttl }

// Age returns how old the profile is on the store's clock.
func (s *Store) Age(p *Profile) time.Duration { return s.now().Sub(p.LearnedAt) }

// Stale reports whether the profile has outlived the TTL.
func (s *Store) Stale(p *Profile) bool { return s.Age(p) >= s.ttl }

// Get returns the cached profile for key if one exists and is fresh,
// without triggering characterization. Lookups are counted in Stats.
func (s *Store) Get(key Key) (*Profile, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p := s.profiles[key]
	switch {
	case p == nil:
		s.stats.Misses++
		return nil, false
	case s.now().Sub(p.LearnedAt) >= s.ttl:
		s.stats.Expired++
		return nil, false
	}
	s.stats.Hits++
	s.touchLocked(key)
	return p, true
}

// GetOrCharacterize returns the cached profile for key, learning it
// first if it is missing or stale. The second result reports whether the
// profile came from cache. Concurrent callers for the same key share one
// characterization: the first becomes the leader and runs it, the rest
// wait for the leader's result (or their own ctx ending). A leader
// failure is returned to every waiter and nothing is cached.
func (s *Store) GetOrCharacterize(ctx context.Context, key Key) (*Profile, bool, error) {
	s.mu.Lock()
	if p := s.profiles[key]; p != nil && s.now().Sub(p.LearnedAt) < s.ttl {
		s.stats.Hits++
		s.touchLocked(key)
		s.mu.Unlock()
		return p, true, nil
	} else if p == nil {
		s.stats.Misses++
	} else {
		s.stats.Expired++
	}
	if c, ok := s.inflight[key]; ok {
		s.stats.Joined++
		s.mu.Unlock()
		select {
		case <-c.done:
			return c.profile, false, c.err
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	}
	c := s.beginLocked(key)
	s.mu.Unlock()
	s.run(ctx, key, c, false)
	return c.profile, false, c.err
}

// ServeResult reports how Serve satisfied a lookup.
type ServeResult struct {
	// Cached is true when the profile came from the cache rather than a
	// characterization run on this call.
	Cached bool
	// Degraded is true when the served profile had outlived its TTL and
	// re-characterization failed: stale data beats no data, but the
	// caller must surface the degradation.
	Degraded bool
}

// Serve is GetOrCharacterize with graceful degradation: when the
// profile is missing-or-stale and re-learning it fails, a stale cached
// profile (kept through both TTL expiry and failed background
// refreshes) is served flagged Degraded instead of erroring. Only a key
// with no profile at all surfaces the characterization error.
func (s *Store) Serve(ctx context.Context, key Key) (*Profile, ServeResult, error) {
	p, cached, err := s.GetOrCharacterize(ctx, key)
	if err == nil {
		return p, ServeResult{Cached: cached}, nil
	}
	s.mu.Lock()
	stale := s.profiles[key]
	if stale != nil {
		s.stats.DegradedServes++
		s.touchLocked(key)
	}
	s.mu.Unlock()
	if stale != nil {
		return stale, ServeResult{Cached: true, Degraded: true}, nil
	}
	return nil, ServeResult{}, err
}

// Characterize forces a fresh characterization for key regardless of
// cache state, joining an already in-flight one if present.
func (s *Store) Characterize(ctx context.Context, key Key) (*Profile, error) {
	s.mu.Lock()
	if c, ok := s.inflight[key]; ok {
		s.stats.Joined++
		s.mu.Unlock()
		select {
		case <-c.done:
			return c.profile, c.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	c := s.beginLocked(key)
	s.mu.Unlock()
	s.run(ctx, key, c, false)
	return c.profile, c.err
}

// beginLocked registers a new in-flight call for key. The caller must
// hold s.mu and have checked no call is in flight.
func (s *Store) beginLocked(key Key) *call {
	c := &call{done: make(chan struct{})}
	s.inflight[key] = c
	return c
}

// run executes the characterization as the call's leader and publishes
// the outcome. On success the finished profile is journaled (write-ahead)
// and then swapped into the cache under the lock — readers only ever see
// the old pointer or the complete new one. On failure any previously
// cached profile is left untouched.
func (s *Store) run(ctx context.Context, key Key, c *call, refresh bool) {
	p, err := s.characterize(ctx, key)
	if err == nil && p == nil {
		err = fmt.Errorf("profilestore: characterize returned no profile for %s", key)
	}
	var jerr error
	if err == nil {
		q := *p // publish a copy so the CharacterizeFunc can't mutate it later
		q.Key = key
		if q.LearnedAt.IsZero() {
			q.LearnedAt = s.now()
		}
		p = &q
		if s.journal != nil {
			// Durability before visibility: the record hits the journal
			// (and its fsync) before any reader can observe the profile, so
			// a crash can never lose a profile a caller was already told
			// about. A journal failure is counted, not fatal — see Journal.
			jerr = s.journal.Put(RecordOf(p))
		}
	}
	var evicted []Key
	s.mu.Lock()
	delete(s.inflight, key)
	switch {
	case err == nil:
		evicted = s.publishLocked(p)
		c.profile = p
		if jerr != nil {
			s.stats.JournalErrors++
		}
		if refresh {
			s.stats.Refreshes++
		} else {
			s.stats.Characterizations++
		}
	case refresh:
		s.stats.RefreshErrors++
	default:
		s.stats.CharacterizeErrors++
	}
	c.err = err
	s.mu.Unlock()
	close(c.done)
	s.journalDeletes(evicted)
}

// touchLocked stamps key as most recently used. Caller holds s.mu.
func (s *Store) touchLocked(key Key) {
	s.useSeq++
	s.lastUse[key] = s.useSeq
}

// publishLocked installs p under its key, stamps recency, and enforces
// the MaxProfiles bound, returning the keys it evicted. The caller
// journals the deletions after releasing s.mu; a crash in between
// merely leaves extra profiles in the journal, which the bound trims
// again on the next boot.
func (s *Store) publishLocked(p *Profile) []Key {
	s.profiles[p.Key] = p
	s.gens[p.Key]++
	s.touchLocked(p.Key)
	var evicted []Key
	for s.maxProfiles > 0 && len(s.profiles) > s.maxProfiles {
		victim, ok := s.lruVictimLocked(p.Key)
		if !ok {
			break
		}
		delete(s.profiles, victim)
		delete(s.lastUse, victim)
		s.gens[victim]++
		s.stats.Evictions++
		evicted = append(evicted, victim)
	}
	return evicted
}

// lruVictimLocked picks the least-recently-used cached key other than
// keep (the entry that just came in is never its own victim).
func (s *Store) lruVictimLocked(keep Key) (Key, bool) {
	var victim Key
	found := false
	var oldest uint64
	for key := range s.profiles {
		if key == keep {
			continue
		}
		use := s.lastUse[key] // absent ⇒ 0 ⇒ oldest possible
		if !found || use < oldest {
			victim, oldest, found = key, use, true
		}
	}
	return victim, found
}

// journalDeletes records evicted/invalidated keys in the journal,
// counting (not surfacing) failures.
func (s *Store) journalDeletes(keys []Key) {
	if s.journal == nil || len(keys) == 0 {
		return
	}
	failed := 0
	for _, key := range keys {
		if s.journal.Delete(key) != nil {
			failed++
		}
	}
	if failed > 0 {
		s.mu.Lock()
		s.stats.JournalErrors += uint64(failed)
		s.mu.Unlock()
	}
}

// Load seeds the store with already-durable profiles (crash recovery)
// without journaling them again. Profiles are installed oldest first so
// LRU recency mirrors learning order; if they exceed MaxProfiles the
// excess is evicted (and those deletions are journaled). Returns how
// many profiles were installed before eviction.
func (s *Store) Load(profiles []*Profile) int {
	sorted := make([]*Profile, 0, len(profiles))
	for _, p := range profiles {
		if p != nil {
			sorted = append(sorted, p)
		}
	}
	sort.Slice(sorted, func(i, j int) bool {
		if !sorted[i].LearnedAt.Equal(sorted[j].LearnedAt) {
			return sorted[i].LearnedAt.Before(sorted[j].LearnedAt)
		}
		return sorted[i].Key.String() < sorted[j].Key.String()
	})
	var evicted []Key
	s.mu.Lock()
	for _, p := range sorted {
		evicted = append(evicted, s.publishLocked(p)...)
	}
	s.mu.Unlock()
	s.journalDeletes(evicted)
	return len(sorted)
}

// Import journals and publishes an externally learned profile — e.g. a
// file written by `characterize -out` preloaded at boot. The profile
// must carry a usable Key (Machine and Method; a zero Width is filled
// from the RBMS); a zero LearnedAt becomes now. The returned error is
// the journal's, if any — the profile is serving in memory either way.
func (s *Store) Import(p *Profile) error {
	if p == nil {
		return fmt.Errorf("profilestore: nil profile")
	}
	q := *p
	if q.Key.Width == 0 {
		q.Key.Width = q.RBMS.Width
	}
	if q.Key.Machine == "" || q.Key.Method == "" || q.Key.Width != q.RBMS.Width {
		return fmt.Errorf("profilestore: profile has unusable key %s (RBMS width %d)", q.Key, q.RBMS.Width)
	}
	if q.LearnedAt.IsZero() {
		q.LearnedAt = s.now()
	}
	var jerr error
	if s.journal != nil {
		jerr = s.journal.Put(RecordOf(&q))
	}
	var evicted []Key
	s.mu.Lock()
	evicted = s.publishLocked(&q)
	if jerr != nil {
		s.stats.JournalErrors++
	}
	s.mu.Unlock()
	s.journalDeletes(evicted)
	return jerr
}

// Refresh re-learns every cached profile older than RefreshAfter, at
// most RefreshWorkers at a time (orchestrate.Map). Requests arriving
// while a refresh runs keep being served the previous profile — stale
// while revalidating — and a failed refresh keeps the old profile and is
// only counted in Stats. Refresh returns the first re-learning error.
func (s *Store) Refresh(ctx context.Context) error {
	now := s.now()
	s.mu.Lock()
	due := make([]Key, 0, len(s.profiles))
	for key, p := range s.profiles {
		if _, busy := s.inflight[key]; busy {
			continue
		}
		if now.Sub(p.LearnedAt) >= s.refreshAfter {
			due = append(due, key)
		}
	}
	s.mu.Unlock()
	if len(due) == 0 {
		return nil
	}
	sort.Slice(due, func(i, j int) bool { return due[i].String() < due[j].String() })
	_, err := orchestrate.Map(ctx, s.refreshWorkers, due,
		func(ctx context.Context, _ int, key Key) (struct{}, error) {
			s.mu.Lock()
			if _, busy := s.inflight[key]; busy {
				// A request-path characterization started since the scan;
				// it will publish a fresh profile, so skip this key.
				s.mu.Unlock()
				return struct{}{}, nil
			}
			c := s.beginLocked(key)
			s.mu.Unlock()
			s.run(ctx, key, c, true)
			return struct{}{}, c.err
		})
	return err
}

// RefreshLoop calls Refresh every interval until ctx ends. Errors are
// absorbed (and counted in Stats): a failed pass leaves the old profiles
// serving and the next tick retries.
func (s *Store) RefreshLoop(ctx context.Context, interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			_ = s.Refresh(ctx)
		}
	}
}

// Invalidate drops the cached profile for key, if any, journaling the
// deletion. An in-flight characterization is unaffected and will
// re-publish when it completes.
func (s *Store) Invalidate(key Key) {
	s.mu.Lock()
	_, had := s.profiles[key]
	delete(s.profiles, key)
	delete(s.lastUse, key)
	// Bump even when nothing was cached: an in-flight characterization
	// may still publish under this key, and downstream caches keyed to
	// the pre-invalidate generation must not survive it.
	s.gens[key]++
	s.mu.Unlock()
	if had {
		s.journalDeletes([]Key{key})
	}
}

// Generation returns the profile generation of key: a monotonic
// counter bumped every time the profile under that key changes
// (characterize, refresh, import, warm-restart load, eviction,
// invalidation). Downstream result caches record the generation a
// computation used and discard entries the moment it moves — a
// re-characterized profile can never be paired with results computed
// against its predecessor. Keys never published report 0.
func (s *Store) Generation(key Key) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gens[key]
}

// Profiles returns a snapshot of every cached profile, sorted by key.
func (s *Store) Profiles() []*Profile {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Profile, 0, len(s.profiles))
	for _, p := range s.profiles {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key.String() < out[j].Key.String() })
	return out
}

// StatsSnapshot returns the current counters plus the live entry count.
func (s *Store) StatsSnapshot() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Entries = len(s.profiles)
	return st
}

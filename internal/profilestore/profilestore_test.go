package profilestore

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"biasmit/internal/core"
)

// fakeClock is a manually advanced clock safe for concurrent reads.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

// uniformProfile builds a profile whose every strength entry equals v —
// readers can detect a torn profile by checking uniformity.
func uniformProfile(key Key, v float64) *Profile {
	strength := make([]float64, 1<<uint(key.Width))
	for i := range strength {
		strength[i] = v
	}
	rbms, err := core.NewRBMS(key.Width, strength)
	if err != nil {
		panic(err)
	}
	return &Profile{RBMS: rbms, Shots: 1}
}

// checkUniform fails the test if the profile's strengths are not all
// identical (which would mean a half-written profile escaped the store).
func checkUniform(t *testing.T, p *Profile) {
	t.Helper()
	for i, s := range p.RBMS.Strength {
		if s != p.RBMS.Strength[0] {
			t.Fatalf("non-uniform profile: strength[%d]=%v, strength[0]=%v", i, s, p.RBMS.Strength[0])
		}
	}
}

func TestGetOrCharacterizeCachesAndExpires(t *testing.T) {
	clock := newFakeClock()
	var calls atomic.Int64
	key := Key{Machine: "ibmqx4", Width: 3, Method: "brute"}
	s := New(func(ctx context.Context, k Key) (*Profile, error) {
		n := calls.Add(1)
		return uniformProfile(k, float64(n)), nil
	}, Options{TTL: 10 * time.Minute, Now: clock.now})

	p1, cached, err := s.GetOrCharacterize(context.Background(), key)
	if err != nil || cached {
		t.Fatalf("first call: cached=%v err=%v, want miss", cached, err)
	}
	if p1.Key != key {
		t.Fatalf("profile key %v, want %v", p1.Key, key)
	}
	if p1.LearnedAt != clock.now() {
		t.Fatalf("LearnedAt %v, want store clock %v", p1.LearnedAt, clock.now())
	}

	p2, cached, err := s.GetOrCharacterize(context.Background(), key)
	if err != nil || !cached {
		t.Fatalf("second call: cached=%v err=%v, want hit", cached, err)
	}
	if p2 != p1 {
		t.Fatal("cache hit returned a different profile pointer")
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("characterize ran %d times, want 1", got)
	}

	// Within TTL the profile stays fresh; past it the entry expires.
	clock.advance(9 * time.Minute)
	if _, cached, _ := s.GetOrCharacterize(context.Background(), key); !cached {
		t.Fatal("profile expired before its TTL")
	}
	clock.advance(2 * time.Minute)
	p3, cached, err := s.GetOrCharacterize(context.Background(), key)
	if err != nil || cached {
		t.Fatalf("post-TTL call: cached=%v err=%v, want re-characterization", cached, err)
	}
	if p3 == p1 {
		t.Fatal("expired entry served the old profile")
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("characterize ran %d times, want 2", got)
	}

	st := s.StatsSnapshot()
	if st.Hits != 2 || st.Misses != 1 || st.Expired != 1 || st.Characterizations != 2 {
		t.Fatalf("stats = %+v, want 2 hits / 1 miss / 1 expired / 2 characterizations", st)
	}
	if st.Entries != 1 {
		t.Fatalf("entries = %d, want 1", st.Entries)
	}
}

func TestConcurrentGetOrCharacterizeDeduplicates(t *testing.T) {
	const waiters = 32
	var calls atomic.Int64
	release := make(chan struct{})
	key := Key{Machine: "ibmqx2", Width: 4, Method: "brute"}
	s := New(func(ctx context.Context, k Key) (*Profile, error) {
		calls.Add(1)
		<-release // hold the leader until every other caller has joined
		return uniformProfile(k, 7), nil
	}, Options{TTL: time.Hour})

	results := make(chan *Profile, waiters)
	errs := make(chan error, waiters)
	for i := 0; i < waiters; i++ {
		go func() {
			p, cached, err := s.GetOrCharacterize(context.Background(), key)
			if cached {
				err = errors.New("burst call reported a cache hit")
			}
			results <- p
			errs <- err
		}()
	}

	// Wait until one leader is characterizing and the rest are parked on
	// its call, then let the characterization finish.
	deadline := time.After(10 * time.Second)
	for {
		st := s.StatsSnapshot()
		if st.Misses == waiters && st.Joined == waiters-1 {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("burst never converged to 1 leader + %d joiners: %+v", waiters-1, st)
		case <-time.After(time.Millisecond):
		}
	}
	close(release)

	for i := 0; i < waiters; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
		p := <-results
		if p == nil {
			t.Fatal("nil profile from deduplicated call")
		}
		checkUniform(t, p)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("characterize ran %d times for a %d-call burst, want 1", got, waiters)
	}
}

func TestLeaderErrorPropagatesAndCachesNothing(t *testing.T) {
	wantErr := errors.New("characterization failed")
	fail := atomic.Bool{}
	fail.Store(true)
	key := Key{Machine: "ibmqx4", Width: 2, Method: "esct"}
	s := New(func(ctx context.Context, k Key) (*Profile, error) {
		if fail.Load() {
			return nil, wantErr
		}
		return uniformProfile(k, 1), nil
	}, Options{TTL: time.Hour})

	if _, _, err := s.GetOrCharacterize(context.Background(), key); !errors.Is(err, wantErr) {
		t.Fatalf("err = %v, want %v", err, wantErr)
	}
	if st := s.StatsSnapshot(); st.Entries != 0 || st.CharacterizeErrors != 1 {
		t.Fatalf("stats after failure = %+v, want 0 entries / 1 error", st)
	}
	// The failure is not cached: the next call retries.
	fail.Store(false)
	if _, cached, err := s.GetOrCharacterize(context.Background(), key); err != nil || cached {
		t.Fatalf("retry after failure: cached=%v err=%v", cached, err)
	}
}

// TestBackgroundRefreshServesOnlyCompleteProfiles hammers the store with
// readers while refreshes repeatedly swap the profile. Run under -race
// this checks the swap is synchronized; the uniformity check ensures no
// reader ever observes a half-written profile.
func TestBackgroundRefreshServesOnlyCompleteProfiles(t *testing.T) {
	var version atomic.Int64
	key := Key{Machine: "ibmqx4", Width: 5, Method: "brute"}
	s := New(func(ctx context.Context, k Key) (*Profile, error) {
		v := float64(version.Add(1))
		p := uniformProfile(k, v)
		// Mimic an incremental build: the profile under construction is
		// mutated field by field, but only the finished value is returned.
		for i := range p.RBMS.Strength {
			p.RBMS.Strength[i] = v
		}
		return p, nil
	}, Options{TTL: time.Hour, RefreshAfter: time.Nanosecond, RefreshWorkers: 2})

	if _, _, err := s.GetOrCharacterize(context.Background(), key); err != nil {
		t.Fatal(err)
	}

	const readers = 8
	stop := make(chan struct{})
	var wg sync.WaitGroup
	readErrs := make(chan error, readers)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				p, cached, err := s.GetOrCharacterize(context.Background(), key)
				if err != nil {
					readErrs <- err
					return
				}
				if !cached {
					readErrs <- errors.New("reader missed during refresh: stale-while-revalidate broken")
					return
				}
				for i, v := range p.RBMS.Strength {
					if v != p.RBMS.Strength[0] {
						readErrs <- fmt.Errorf("torn profile: strength[%d]=%v vs %v", i, v, p.RBMS.Strength[0])
						return
					}
				}
			}
		}()
	}

	for i := 0; i < 25; i++ {
		if err := s.Refresh(context.Background()); err != nil {
			t.Fatalf("refresh %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-readErrs:
		t.Fatal(err)
	default:
	}
	if st := s.StatsSnapshot(); st.Refreshes < 25 {
		t.Fatalf("refreshes = %d, want >= 25", st.Refreshes)
	}
}

func TestRefreshOnlyRelearnsDueProfiles(t *testing.T) {
	clock := newFakeClock()
	var calls atomic.Int64
	key := Key{Machine: "ibmqx2", Width: 3, Method: "awct"}
	s := New(func(ctx context.Context, k Key) (*Profile, error) {
		return uniformProfile(k, float64(calls.Add(1))), nil
	}, Options{TTL: 30 * time.Minute, RefreshAfter: 20 * time.Minute, Now: clock.now})

	if _, _, err := s.GetOrCharacterize(context.Background(), key); err != nil {
		t.Fatal(err)
	}
	if err := s.Refresh(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("fresh profile was refreshed (%d characterizations)", got)
	}

	clock.advance(21 * time.Minute)
	if err := s.Refresh(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("due profile was not refreshed (%d characterizations)", got)
	}
	// The refreshed profile restarted its TTL clock: still fresh later.
	clock.advance(25 * time.Minute)
	if _, cached, _ := s.GetOrCharacterize(context.Background(), key); !cached {
		t.Fatal("refresh did not reset the profile's age")
	}
}

func TestRefreshFailureKeepsServingOldProfile(t *testing.T) {
	clock := newFakeClock()
	fail := atomic.Bool{}
	key := Key{Machine: "ibmqx4", Width: 3, Method: "brute"}
	s := New(func(ctx context.Context, k Key) (*Profile, error) {
		if fail.Load() {
			return nil, errors.New("device offline")
		}
		return uniformProfile(k, 1), nil
	}, Options{TTL: time.Hour, RefreshAfter: time.Minute, Now: clock.now})

	p0, _, err := s.GetOrCharacterize(context.Background(), key)
	if err != nil {
		t.Fatal(err)
	}
	clock.advance(2 * time.Minute)
	fail.Store(true)
	if err := s.Refresh(context.Background()); err == nil {
		t.Fatal("refresh of a failing characterization reported success")
	}
	p1, cached, err := s.GetOrCharacterize(context.Background(), key)
	if err != nil || !cached || p1 != p0 {
		t.Fatalf("old profile not served after failed refresh: cached=%v err=%v", cached, err)
	}
	if st := s.StatsSnapshot(); st.RefreshErrors != 1 {
		t.Fatalf("stats = %+v, want 1 refresh error", st)
	}
}

// TestGenerationTracksProfileChanges pins the contract downstream
// result caches rely on: Generation(key) is 0 before any publication
// and bumps on every event that changes the profile under the key —
// characterize, TTL re-characterize, import, invalidation — so a
// result computed against generation G can be recognized as stale the
// moment the profile moves.
func TestGenerationTracksProfileChanges(t *testing.T) {
	clock := newFakeClock()
	var calls atomic.Int64
	key := Key{Machine: "ibmqx4", Width: 3, Method: "brute"}
	s := New(func(ctx context.Context, k Key) (*Profile, error) {
		return uniformProfile(k, float64(calls.Add(1))), nil
	}, Options{TTL: 10 * time.Minute, Now: clock.now})

	if g := s.Generation(key); g != 0 {
		t.Fatalf("virgin key generation %d, want 0", g)
	}

	if _, _, err := s.GetOrCharacterize(context.Background(), key); err != nil {
		t.Fatal(err)
	}
	g1 := s.Generation(key)
	if g1 == 0 {
		t.Fatal("characterization did not bump the generation")
	}

	// A cache hit must NOT bump: generations track the profile, not use.
	if _, cached, _ := s.GetOrCharacterize(context.Background(), key); !cached {
		t.Fatal("expected a cache hit")
	}
	if g := s.Generation(key); g != g1 {
		t.Fatalf("cache hit moved the generation %d -> %d", g1, g)
	}

	// TTL expiry forces a re-characterization: new profile, new gen.
	clock.advance(11 * time.Minute)
	if _, cached, _ := s.GetOrCharacterize(context.Background(), key); cached {
		t.Fatal("expected a post-TTL re-characterization")
	}
	g2 := s.Generation(key)
	if g2 <= g1 {
		t.Fatalf("re-characterization generation %d, want > %d", g2, g1)
	}

	// Invalidation bumps even though nothing is republished yet.
	s.Invalidate(key)
	g3 := s.Generation(key)
	if g3 <= g2 {
		t.Fatalf("invalidation generation %d, want > %d", g3, g2)
	}

	// Import is a publication too.
	imp := uniformProfile(key, 0.5)
	imp.Key = key
	imp.LearnedAt = clock.now()
	if err := s.Import(imp); err != nil {
		t.Fatal(err)
	}
	if g := s.Generation(key); g <= g3 {
		t.Fatalf("import generation %d, want > %d", g, g3)
	}

	// Other keys are untouched by all of the above.
	other := Key{Machine: "ibmqx2", Width: 2, Method: "brute"}
	if g := s.Generation(other); g != 0 {
		t.Fatalf("unrelated key generation %d, want 0", g)
	}
}

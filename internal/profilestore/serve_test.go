package profilestore

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestServeFallsBackToStaleProfile(t *testing.T) {
	clock := newFakeClock()
	var fail atomic.Bool
	var calls atomic.Int64
	wantErr := errors.New("machine offline")
	key := Key{Machine: "ibmqx4", Width: 3, Method: "brute"}
	s := New(func(ctx context.Context, k Key) (*Profile, error) {
		n := calls.Add(1)
		if fail.Load() {
			return nil, wantErr
		}
		return uniformProfile(k, float64(n)), nil
	}, Options{TTL: 10 * time.Minute, Now: clock.now})

	p1, res, err := s.Serve(context.Background(), key)
	if err != nil || res.Cached || res.Degraded {
		t.Fatalf("first serve: res=%+v err=%v, want a fresh characterization", res, err)
	}

	// Fresh profile: plain cache hit, no degradation.
	if _, res, err = s.Serve(context.Background(), key); err != nil || !res.Cached || res.Degraded {
		t.Fatalf("second serve: res=%+v err=%v, want a cache hit", res, err)
	}

	// Past the TTL with characterization failing: the stale profile is
	// served, flagged degraded.
	clock.advance(11 * time.Minute)
	fail.Store(true)
	p3, res, err := s.Serve(context.Background(), key)
	if err != nil {
		t.Fatalf("degraded serve errored: %v", err)
	}
	if !res.Cached || !res.Degraded {
		t.Fatalf("degraded serve res=%+v, want cached and degraded", res)
	}
	if p3 != p1 {
		t.Fatal("degraded serve returned a different profile than the stale cache entry")
	}
	if !s.Stale(p3) {
		t.Fatal("the degraded profile should read as stale")
	}

	// A key with no cached profile still surfaces the error.
	missing := Key{Machine: "ibmqx4", Width: 2, Method: "brute"}
	if _, _, err := s.Serve(context.Background(), missing); !errors.Is(err, wantErr) {
		t.Fatalf("missing-profile serve error = %v, want %v", err, wantErr)
	}

	if st := s.StatsSnapshot(); st.DegradedServes != 1 {
		t.Fatalf("DegradedServes = %d, want 1", st.DegradedServes)
	}

	// Recovery: once characterization works again, Serve re-learns and
	// drops the degraded flag.
	fail.Store(false)
	p5, res, err := s.Serve(context.Background(), key)
	if err != nil || res.Degraded {
		t.Fatalf("recovered serve res=%+v err=%v", res, err)
	}
	if p5 == p1 {
		t.Fatal("recovered serve should carry a re-learned profile")
	}
}

// DiskLog is the profile store's durability engine: a checksummed
// write-ahead log of profile puts/deletes plus periodically compacted
// snapshots, both built on internal/persist primitives and both
// speaking persist.ProfileRecord — the same serialization the
// characterize CLI writes.
//
// Layout under the data directory:
//
//	snapshot.json  persist.ProfileSnapshot (atomic temp+rename writes)
//	wal.log        length-prefixed CRC32-framed records (persist.WAL)
//
// Every journal entry carries a monotonic sequence number; a snapshot
// records the sequence of the last entry it folds in. Recovery loads
// the snapshot, then replays WAL entries with higher sequence numbers
// in append order — entries at or below the snapshot's watermark are
// skipped, so a crash between "snapshot renamed" and "WAL reset" is
// harmless (the stale entries replay as no-ops). Replay tolerates a
// torn WAL tail: a kill -9 mid-append loses at most the entry being
// appended, never the log.
//
// The DiskLog keeps its own materialized map of the journaled state, so
// compaction never has to coordinate with the store's lock: Compact
// snapshots the map and resets the WAL under the DiskLog's own mutex,
// strictly serialized with appends.
package profilestore

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"biasmit/internal/persist"
)

const (
	snapshotFile = "snapshot.json"
	walFile      = "wal.log"
)

// walEntry is the JSON payload of one WAL record.
type walEntry struct {
	// Op is "put" or "del".
	Op string `json:"op"`
	// Seq orders this entry against snapshots (see package comment).
	Seq uint64 `json:"seq"`
	// Profile is the full record for a put — full-record entries make
	// replay idempotent (last writer wins), which is what allows the
	// snapshot/WAL overlap window.
	Profile *persist.ProfileRecord `json:"profile,omitempty"`
	// Key identifies the entry for a del.
	Key *Key `json:"key,omitempty"`
}

// RecoveryInfo describes what OpenDiskLog reconstructed.
type RecoveryInfo struct {
	// SnapshotProfiles is how many records the snapshot held (0 when no
	// snapshot existed).
	SnapshotProfiles int
	// WALRecords is how many intact WAL entries were replayed.
	WALRecords int
	// WALSkipped counts replayed entries already folded into the
	// snapshot (sequence at or below its watermark).
	WALSkipped int
	// TailTruncated is true when the WAL ended in a torn record that was
	// dropped — the signature of a crash mid-append.
	TailTruncated bool
	// Profiles is the live record count after snapshot+WAL replay.
	Profiles int
	// Invalid counts recovered records that failed validation and were
	// dropped (corrupt strengths, width mismatch).
	Invalid int
}

// DiskLogStats is a point-in-time snapshot of the log's counters, for
// /metrics.
type DiskLogStats struct {
	Recovery        RecoveryInfo
	WALAppends      uint64
	WALAppendErrors uint64
	WALSizeBytes    int64
	Snapshots       uint64
	SnapshotErrors  uint64
	// LiveRecords is the journaled profile count (the durable mirror of
	// the store's entry gauge).
	LiveRecords int
}

// DiskLog journals profile mutations to a data directory. Construct
// with OpenDiskLog; it implements Journal and is safe for concurrent
// use. The zero value is not usable.
type DiskLog struct {
	dir string

	// mu serializes appends, compaction, and state mutation; the fsync
	// per append happens under it. Profile churn is calibration-rate
	// (minutes), so contention is not a concern.
	mu       sync.Mutex
	wal      *persist.WAL
	seq      uint64
	state    map[Key]persist.ProfileRecord
	recovery RecoveryInfo
	appends  uint64
	appendEs uint64
	snaps    uint64
	snapEs   uint64
	closed   bool
}

// OpenDiskLog opens (creating if needed) the data directory and
// reconstructs the journaled state: snapshot first, then WAL replay.
// The returned log is ready for appends; recovered profiles are
// available via RecoveredProfiles.
func OpenDiskLog(dir string) (*DiskLog, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("profilestore: creating data dir %s: %w", dir, err)
	}
	d := &DiskLog{
		dir:   dir,
		state: make(map[Key]persist.ProfileRecord),
	}

	snapPath := filepath.Join(dir, snapshotFile)
	var lastSeq uint64
	if f, err := os.Open(snapPath); err == nil {
		snap, serr := persist.LoadSnapshot(f)
		f.Close()
		if serr != nil {
			return nil, fmt.Errorf("profilestore: reading %s: %w", snapPath, serr)
		}
		lastSeq = snap.LastSeq
		for _, rec := range snap.Profiles {
			d.restore(rec)
		}
		d.recovery.SnapshotProfiles = len(snap.Profiles)
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("profilestore: opening %s: %w", snapPath, err)
	}
	d.seq = lastSeq

	wal, rep, err := persist.OpenWAL(filepath.Join(dir, walFile), func(payload []byte) error {
		var e walEntry
		if err := json.Unmarshal(payload, &e); err != nil {
			return fmt.Errorf("decoding entry: %w", err)
		}
		d.recovery.WALRecords++
		if e.Seq > d.seq {
			d.seq = e.Seq
		}
		if e.Seq <= lastSeq {
			// Already folded into the snapshot (crash landed between the
			// snapshot rename and the WAL reset).
			d.recovery.WALSkipped++
			return nil
		}
		switch {
		case e.Op == "put" && e.Profile != nil:
			d.restore(*e.Profile)
		case e.Op == "del" && e.Key != nil:
			delete(d.state, *e.Key)
		default:
			return fmt.Errorf("malformed entry op=%q", e.Op)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	d.wal = wal
	d.recovery.TailTruncated = rep.Truncated
	d.recovery.Profiles = len(d.state)
	return d, nil
}

// restore folds one recovered record into the state map, dropping (and
// counting) records that no longer validate.
func (d *DiskLog) restore(rec persist.ProfileRecord) {
	if _, err := rec.RBMS(); err != nil {
		d.recovery.Invalid++
		return
	}
	d.state[Key{Machine: rec.Machine, Width: rec.Width, Method: rec.Method}] = rec
}

// Recovery reports what the open reconstructed.
func (d *DiskLog) Recovery() RecoveryInfo {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.recovery
}

// RecoveredProfiles converts the recovered state into store profiles,
// sorted by key — ready for Store.Load.
func (d *DiskLog) RecoveredProfiles() []*Profile {
	d.mu.Lock()
	records := make([]persist.ProfileRecord, 0, len(d.state))
	for _, rec := range d.state {
		records = append(records, rec)
	}
	d.mu.Unlock()
	out := make([]*Profile, 0, len(records))
	for _, rec := range records {
		if p, err := FromRecord(rec); err == nil {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key.String() < out[j].Key.String() })
	return out
}

// Put journals one profile record (Journal interface). The entry is on
// disk and fsynced when Put returns nil.
func (d *DiskLog) Put(rec persist.ProfileRecord) error {
	key := Key{Machine: rec.Machine, Width: rec.Width, Method: rec.Method}
	return d.append(walEntry{Op: "put", Profile: &rec}, func() { d.state[key] = rec })
}

// Delete journals one profile deletion (Journal interface).
func (d *DiskLog) Delete(key Key) error {
	return d.append(walEntry{Op: "del", Key: &key}, func() { delete(d.state, key) })
}

func (d *DiskLog) append(e walEntry, commit func()) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return fmt.Errorf("profilestore: journal is closed")
	}
	e.Seq = d.seq + 1
	payload, err := json.Marshal(e)
	if err != nil {
		d.appendEs++
		return fmt.Errorf("profilestore: encoding journal entry: %w", err)
	}
	if err := d.wal.Append(payload); err != nil {
		d.appendEs++
		return err
	}
	d.seq = e.Seq
	d.appends++
	commit()
	return nil
}

// Compact folds the journaled state into a fresh snapshot (written
// atomically) and empties the WAL. Crash-safe at every step: until the
// rename lands the old snapshot+WAL still reconstruct the state, and
// after it lands the stale WAL entries are skipped by sequence number.
func (d *DiskLog) Compact() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return fmt.Errorf("profilestore: journal is closed")
	}
	snap := persist.ProfileSnapshot{LastSeq: d.seq, Profiles: make([]persist.ProfileRecord, 0, len(d.state))}
	keys := make([]Key, 0, len(d.state))
	for key := range d.state {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].String() < keys[j].String() })
	for _, key := range keys {
		snap.Profiles = append(snap.Profiles, d.state[key])
	}
	err := persist.WriteFileAtomic(filepath.Join(d.dir, snapshotFile), func(w io.Writer) error {
		return persist.SaveSnapshot(w, snap)
	})
	if err != nil {
		d.snapEs++
		return err
	}
	if err := d.wal.Reset(); err != nil {
		d.snapEs++
		return err
	}
	d.snaps++
	return nil
}

// CompactLoop calls Compact every interval until ctx ends, mirroring
// Store.RefreshLoop: errors are absorbed (and counted in Stats), the
// next tick retries.
func (d *DiskLog) CompactLoop(ctx context.Context, interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			_ = d.Compact()
		}
	}
}

// Stats snapshots the log's counters.
func (d *DiskLog) Stats() DiskLogStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return DiskLogStats{
		Recovery:        d.recovery,
		WALAppends:      d.appends,
		WALAppendErrors: d.appendEs,
		WALSizeBytes:    d.wal.Size(),
		Snapshots:       d.snaps,
		SnapshotErrors:  d.snapEs,
		LiveRecords:     len(d.state),
	}
}

// Close compacts once more (best effort — a failure leaves the WAL to
// replay on the next boot, which is exactly its job) and releases the
// log.
func (d *DiskLog) Close() error {
	_ = d.Compact()
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	d.closed = true
	return d.wal.Close()
}

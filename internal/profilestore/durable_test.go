package profilestore

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"biasmit/internal/persist"
)

// openLog opens a DiskLog, failing the test on error.
func openLog(t *testing.T, dir string) *DiskLog {
	t.Helper()
	d, err := OpenDiskLog(dir)
	if err != nil {
		t.Fatalf("OpenDiskLog(%s): %v", dir, err)
	}
	return d
}

// testKey returns a distinct key per machine suffix.
func testKey(machine string, width int) Key {
	return Key{Machine: machine, Width: width, Method: "brute"}
}

// durableStore builds a journaled store whose characterizations are
// instant uniform profiles with a call counter.
func durableStore(t *testing.T, d *DiskLog, clock *fakeClock, maxProfiles int, calls *atomic.Int64) *Store {
	t.Helper()
	return New(func(ctx context.Context, k Key) (*Profile, error) {
		n := calls.Add(1)
		return uniformProfile(k, float64(n)), nil
	}, Options{TTL: time.Hour, Now: clock.now, Journal: d, MaxProfiles: maxProfiles})
}

// TestDiskLogCrashRecovery is the core round trip: journaled puts and
// deletes survive a "crash" (the log is simply abandoned, never closed
// or compacted) and reconstruct from the WAL alone.
func TestDiskLogCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	clock := newFakeClock()
	var calls atomic.Int64

	d1 := openLog(t, dir)
	s1 := durableStore(t, d1, clock, 0, &calls)
	keyA, keyB, keyC := testKey("qa", 3), testKey("qb", 2), testKey("qc", 1)
	for _, k := range []Key{keyA, keyB, keyC} {
		if _, _, err := s1.GetOrCharacterize(context.Background(), k); err != nil {
			t.Fatal(err)
		}
	}
	s1.Invalidate(keyC)
	want := s1.Profiles()
	// No Close, no Compact: the process "dies" here.

	d2 := openLog(t, dir)
	rec := d2.Recovery()
	if rec.SnapshotProfiles != 0 || rec.WALRecords != 4 || rec.TailTruncated || rec.Profiles != 2 {
		t.Fatalf("recovery %+v, want 4 WAL records -> 2 profiles, no snapshot, clean tail", rec)
	}
	got := d2.RecoveredProfiles()
	if len(got) != len(want) {
		t.Fatalf("recovered %d profiles, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Key != want[i].Key ||
			!got[i].LearnedAt.Equal(want[i].LearnedAt) ||
			!reflect.DeepEqual(got[i].RBMS.Strength, want[i].RBMS.Strength) ||
			got[i].Shots != want[i].Shots {
			t.Fatalf("profile %d: got %+v, want %+v", i, got[i], want[i])
		}
	}

	// A store warm-loaded from the recovery serves without characterizing.
	s2 := durableStore(t, d2, clock, 0, &calls)
	if n := s2.Load(d2.RecoveredProfiles()); n != 2 {
		t.Fatalf("Load = %d, want 2", n)
	}
	before := calls.Load()
	p, cached, err := s2.GetOrCharacterize(context.Background(), keyA)
	if err != nil || !cached {
		t.Fatalf("warm lookup: cached=%v err=%v", cached, err)
	}
	checkUniform(t, p)
	if calls.Load() != before {
		t.Fatal("warm restart still re-characterized")
	}
}

func TestDiskLogCompactThenMoreWrites(t *testing.T) {
	dir := t.TempDir()
	d1 := openLog(t, dir)
	a := RecordOf(uniformProfileWithKey(testKey("qa", 2), 1))
	b := RecordOf(uniformProfileWithKey(testKey("qb", 2), 2))
	c := RecordOf(uniformProfileWithKey(testKey("qc", 2), 3))
	if err := d1.Put(a); err != nil {
		t.Fatal(err)
	}
	if err := d1.Put(b); err != nil {
		t.Fatal(err)
	}
	if err := d1.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := d1.Put(c); err != nil {
		t.Fatal(err)
	}
	if err := d1.Delete(testKey("qa", 2)); err != nil {
		t.Fatal(err)
	}

	d2 := openLog(t, dir)
	rec := d2.Recovery()
	if rec.SnapshotProfiles != 2 || rec.WALRecords != 2 || rec.WALSkipped != 0 || rec.Profiles != 2 {
		t.Fatalf("recovery %+v, want snapshot=2 + wal=2 -> profiles {qb,qc}", rec)
	}
	got := d2.RecoveredProfiles()
	if len(got) != 2 || got[0].Key.Machine != "qb" || got[1].Key.Machine != "qc" {
		t.Fatalf("recovered %v", got)
	}
}

// TestDiskLogTornTailTolerated appends a partial frame (as a kill -9
// mid-append would) and checks recovery still starts, serving every
// record before the tear.
func TestDiskLogTornTailTolerated(t *testing.T) {
	dir := t.TempDir()
	d1 := openLog(t, dir)
	if err := d1.Put(RecordOf(uniformProfileWithKey(testKey("qa", 2), 1))); err != nil {
		t.Fatal(err)
	}
	if err := d1.Put(RecordOf(uniformProfileWithKey(testKey("qb", 2), 2))); err != nil {
		t.Fatal(err)
	}

	// Torn frame: a full header claiming 64 payload bytes, only 5 written.
	frame := persist.AppendWALRecord(nil, make([]byte, 64))[:13]
	f, err := os.OpenFile(filepath.Join(dir, "wal.log"), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(frame); err != nil {
		t.Fatal(err)
	}
	f.Close()

	d2 := openLog(t, dir)
	rec := d2.Recovery()
	if !rec.TailTruncated {
		t.Fatalf("recovery %+v, want TailTruncated", rec)
	}
	if rec.Profiles != 2 || rec.WALRecords != 2 {
		t.Fatalf("recovery %+v, want both pre-tear profiles", rec)
	}
	// The log is healed: appends and another reopen stay clean.
	if err := d2.Put(RecordOf(uniformProfileWithKey(testKey("qc", 2), 3))); err != nil {
		t.Fatal(err)
	}
	d3 := openLog(t, dir)
	if rec := d3.Recovery(); rec.TailTruncated || rec.Profiles != 3 {
		t.Fatalf("post-heal recovery %+v, want 3 profiles, clean tail", rec)
	}
}

// TestDiskLogEmptyWALWithSnapshot: a clean shutdown leaves a snapshot
// and an empty WAL; recovery must come entirely from the snapshot.
func TestDiskLogEmptyWALWithSnapshot(t *testing.T) {
	dir := t.TempDir()
	d1 := openLog(t, dir)
	if err := d1.Put(RecordOf(uniformProfileWithKey(testKey("qa", 3), 1))); err != nil {
		t.Fatal(err)
	}
	if err := d1.Close(); err != nil { // Close compacts
		t.Fatal(err)
	}
	if st, err := os.Stat(filepath.Join(dir, "wal.log")); err != nil || st.Size() != 0 {
		t.Fatalf("WAL after clean close: size=%v err=%v, want empty", st, err)
	}

	d2 := openLog(t, dir)
	rec := d2.Recovery()
	if rec.SnapshotProfiles != 1 || rec.WALRecords != 0 || rec.Profiles != 1 {
		t.Fatalf("recovery %+v, want snapshot-only single profile", rec)
	}
}

// TestDiskLogSnapshotNewerThanWAL simulates a crash between the
// snapshot rename and the WAL reset: the WAL still holds entries the
// snapshot already folded in. Replay must skip them by sequence number
// so the snapshot's (newer) contents win.
func TestDiskLogSnapshotNewerThanWAL(t *testing.T) {
	dir := t.TempDir()
	d1 := openLog(t, dir)
	stale := RecordOf(uniformProfileWithKey(testKey("qa", 2), 1))
	fresh := RecordOf(uniformProfileWithKey(testKey("qa", 2), 9))
	if err := d1.Put(stale); err != nil {
		t.Fatal(err)
	}
	if err := d1.Put(fresh); err != nil {
		t.Fatal(err)
	}
	if err := d1.Compact(); err != nil {
		t.Fatal(err)
	}

	// Re-create the pre-compaction WAL by hand: entries seq 1 and 2, both
	// at or below the snapshot watermark (2).
	var buf []byte
	for seq, rec := range map[uint64]persist.ProfileRecord{1: stale, 2: fresh} {
		r := rec
		payload, err := json.Marshal(walEntry{Op: "put", Seq: seq, Profile: &r})
		if err != nil {
			t.Fatal(err)
		}
		buf = persist.AppendWALRecord(buf, payload)
	}
	if err := os.WriteFile(filepath.Join(dir, "wal.log"), buf, 0o644); err != nil {
		t.Fatal(err)
	}

	d2 := openLog(t, dir)
	rec := d2.Recovery()
	if rec.WALRecords != 2 || rec.WALSkipped != 2 || rec.Profiles != 1 {
		t.Fatalf("recovery %+v, want both WAL entries skipped", rec)
	}
	got := d2.RecoveredProfiles()
	if len(got) != 1 || got[0].RBMS.Strength[0] != 9 {
		t.Fatalf("recovered %+v, want the snapshot's strength-9 profile", got)
	}
	// New appends must not collide with the skipped sequence numbers.
	if err := d2.Put(RecordOf(uniformProfileWithKey(testKey("qb", 2), 3))); err != nil {
		t.Fatal(err)
	}
	d3 := openLog(t, dir)
	if rec := d3.Recovery(); rec.Profiles != 2 || rec.WALSkipped != 2 {
		t.Fatalf("post-append recovery %+v, want 2 profiles", rec)
	}
}

// TestStoreLRUEvictionIsJournaled: the MaxProfiles bound evicts the
// least-recently-used profile, and the eviction is durable.
func TestStoreLRUEvictionIsJournaled(t *testing.T) {
	dir := t.TempDir()
	clock := newFakeClock()
	var calls atomic.Int64
	d1 := openLog(t, dir)
	s := durableStore(t, d1, clock, 2, &calls)

	keyA, keyB, keyC := testKey("qa", 2), testKey("qb", 2), testKey("qc", 2)
	ctx := context.Background()
	for _, k := range []Key{keyA, keyB} {
		if _, _, err := s.GetOrCharacterize(ctx, k); err != nil {
			t.Fatal(err)
		}
	}
	// Touch A so B becomes the LRU victim.
	if _, ok := s.Get(keyA); !ok {
		t.Fatal("keyA should be cached")
	}
	if _, _, err := s.GetOrCharacterize(ctx, keyC); err != nil {
		t.Fatal(err)
	}

	if _, ok := s.Get(keyB); ok {
		t.Fatal("keyB should have been evicted as LRU")
	}
	for _, k := range []Key{keyA, keyC} {
		if _, ok := s.Get(k); !ok {
			t.Fatalf("%s should have survived eviction", k)
		}
	}
	if st := s.StatsSnapshot(); st.Evictions != 1 || st.Entries != 2 || st.JournalErrors != 0 {
		t.Fatalf("stats %+v, want 1 eviction, 2 entries, clean journal", st)
	}

	// Durability of the eviction: a recovered store has exactly A and C.
	d2 := openLog(t, dir)
	got := d2.RecoveredProfiles()
	if len(got) != 2 || got[0].Key != keyA || got[1].Key != keyC {
		t.Fatalf("recovered %v, want [qa qc]", got)
	}

	// And a bounded store recovering an over-budget set trims on Load.
	s2 := New(func(ctx context.Context, k Key) (*Profile, error) {
		return uniformProfile(k, 1), nil
	}, Options{TTL: time.Hour, Now: clock.now, Journal: d2, MaxProfiles: 1})
	if n := s2.Load(d2.RecoveredProfiles()); n != 2 {
		t.Fatalf("Load = %d, want 2 before trimming", n)
	}
	if st := s2.StatsSnapshot(); st.Entries != 1 {
		t.Fatalf("bounded store kept %d entries, want 1", st.Entries)
	}
}

// uniformProfileWithKey is uniformProfile with the key and a learned
// time filled in, for direct DiskLog puts.
func uniformProfileWithKey(key Key, v float64) *Profile {
	p := uniformProfile(key, v)
	p.Key = key
	p.LearnedAt = time.Date(2026, 2, 1, 0, 0, 0, 0, time.UTC)
	return p
}

// TestStoreImportJournals: an imported (preloaded) profile serves and
// survives restart.
func TestStoreImportJournals(t *testing.T) {
	dir := t.TempDir()
	clock := newFakeClock()
	var calls atomic.Int64
	d := openLog(t, dir)
	s := durableStore(t, d, clock, 0, &calls)

	key := testKey("imported", 3)
	if err := s.Import(uniformProfileWithKey(key, 5)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(key); !ok {
		t.Fatal("imported profile not served")
	}
	if calls.Load() != 0 {
		t.Fatal("import triggered a characterization")
	}

	d2 := openLog(t, dir)
	if got := d2.RecoveredProfiles(); len(got) != 1 || got[0].Key != key {
		t.Fatalf("recovered %v, want the imported profile", got)
	}
}

// TestStoreInvalidateIsDurable: Invalidate journals the deletion.
func TestStoreInvalidateIsDurable(t *testing.T) {
	dir := t.TempDir()
	clock := newFakeClock()
	var calls atomic.Int64
	d := openLog(t, dir)
	s := durableStore(t, d, clock, 0, &calls)
	key := testKey("qa", 2)
	if _, _, err := s.GetOrCharacterize(context.Background(), key); err != nil {
		t.Fatal(err)
	}
	s.Invalidate(key)

	d2 := openLog(t, dir)
	if got := d2.RecoveredProfiles(); len(got) != 0 {
		t.Fatalf("recovered %v, want none after invalidate", got)
	}
}

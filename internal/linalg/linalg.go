// Package linalg provides the small dense linear-algebra kernels needed
// by confusion-matrix readout mitigation: Gaussian elimination with
// partial pivoting for solving A·x = b and inverting calibration
// matrices. Matrices are row-major [][]float64 and sized at most a few
// hundred (2^n for n ≤ 8 measured qubits).
package linalg

import (
	"fmt"
	"math"
)

// Clone returns a deep copy of a matrix.
func Clone(a [][]float64) [][]float64 {
	out := make([][]float64, len(a))
	for i, row := range a {
		out[i] = append([]float64(nil), row...)
	}
	return out
}

// MatVec returns A·x.
func MatVec(a [][]float64, x []float64) ([]float64, error) {
	out := make([]float64, len(a))
	for i, row := range a {
		if len(row) != len(x) {
			return nil, fmt.Errorf("linalg: row %d has %d columns for vector of %d", i, len(row), len(x))
		}
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out, nil
}

// Solve returns x with A·x = b using Gaussian elimination with partial
// pivoting. A and b are not modified. It fails on non-square or
// (numerically) singular systems.
func Solve(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	if n == 0 {
		return nil, fmt.Errorf("linalg: empty system")
	}
	if len(b) != n {
		return nil, fmt.Errorf("linalg: matrix is %d×? but vector has %d entries", n, len(b))
	}
	m := Clone(a)
	x := append([]float64(nil), b...)
	for i, row := range m {
		if len(row) != n {
			return nil, fmt.Errorf("linalg: row %d has %d columns in %d×%d system", i, len(row), n, n)
		}
	}

	const tiny = 1e-12
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(m[pivot][col]) < tiny {
			return nil, fmt.Errorf("linalg: singular matrix at column %d", col)
		}
		m[col], m[pivot] = m[pivot], m[col]
		x[col], x[pivot] = x[pivot], x[col]

		inv := 1 / m[col][col]
		for r := col + 1; r < n; r++ {
			f := m[r][col] * inv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				m[r][c] -= f * m[col][c]
			}
			x[r] -= f * x[col]
		}
	}
	// Back substitution.
	for col := n - 1; col >= 0; col-- {
		s := x[col]
		for c := col + 1; c < n; c++ {
			s -= m[col][c] * x[c]
		}
		x[col] = s / m[col][col]
	}
	return x, nil
}

// Invert returns A⁻¹ by solving against each unit vector.
func Invert(a [][]float64) ([][]float64, error) {
	n := len(a)
	cols := make([][]float64, n)
	e := make([]float64, n)
	for j := 0; j < n; j++ {
		e[j] = 1
		col, err := Solve(a, e)
		if err != nil {
			return nil, err
		}
		e[j] = 0
		cols[j] = col
	}
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			out[i][j] = cols[j][i]
		}
	}
	return out, nil
}

// Invert2 inverts a 2×2 matrix in closed form.
func Invert2(a [2][2]float64) ([2][2]float64, error) {
	det := a[0][0]*a[1][1] - a[0][1]*a[1][0]
	if math.Abs(det) < 1e-12 {
		return [2][2]float64{}, fmt.Errorf("linalg: singular 2×2 matrix")
	}
	inv := 1 / det
	return [2][2]float64{
		{a[1][1] * inv, -a[0][1] * inv},
		{-a[1][0] * inv, a[0][0] * inv},
	}, nil
}

// ProjectToSimplex clips negative entries to zero and rescales to unit
// sum — the standard repair after applying an inverse confusion matrix,
// which can push probabilities slightly outside [0,1]. A zero vector is
// returned unchanged.
func ProjectToSimplex(v []float64) []float64 {
	out := make([]float64, len(v))
	var sum float64
	for i, x := range v {
		if x > 0 {
			out[i] = x
			sum += x
		}
	}
	if sum > 0 {
		for i := range out {
			out[i] /= sum
		}
	}
	return out
}

package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSolveKnownSystem(t *testing.T) {
	a := [][]float64{
		{2, 1, -1},
		{-3, -1, 2},
		{-2, 1, 2},
	}
	b := []float64{8, -11, -3}
	x, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -1}
	for i := range want {
		if !approx(x[i], want[i]) {
			t.Errorf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
}

func TestSolveRequiresPivoting(t *testing.T) {
	// Leading zero forces a row swap.
	a := [][]float64{
		{0, 1},
		{1, 0},
	}
	x, err := Solve(a, []float64{3, 7})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(x[0], 7) || !approx(x[1], 3) {
		t.Errorf("x = %v", x)
	}
}

func TestSolveErrors(t *testing.T) {
	if _, err := Solve(nil, nil); err == nil {
		t.Error("empty system accepted")
	}
	if _, err := Solve([][]float64{{1, 2}}, []float64{1}); err == nil {
		t.Error("non-square accepted")
	}
	if _, err := Solve([][]float64{{1, 1}, {1, 1}}, []float64{1, 2}); err == nil {
		t.Error("singular accepted")
	}
	if _, err := Solve([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestSolveDoesNotMutateInputs(t *testing.T) {
	a := [][]float64{{2, 0}, {0, 2}}
	b := []float64{2, 4}
	if _, err := Solve(a, b); err != nil {
		t.Fatal(err)
	}
	if a[0][0] != 2 || a[1][1] != 2 || b[0] != 2 || b[1] != 4 {
		t.Error("Solve mutated its inputs")
	}
}

func TestInvert(t *testing.T) {
	a := [][]float64{
		{4, 7},
		{2, 6},
	}
	inv, err := Invert(a)
	if err != nil {
		t.Fatal(err)
	}
	// A · A⁻¹ = I.
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			var s float64
			for k := 0; k < 2; k++ {
				s += a[i][k] * inv[k][j]
			}
			want := 0.0
			if i == j {
				want = 1
			}
			if !approx(s, want) {
				t.Errorf("(A·A⁻¹)[%d][%d] = %v", i, j, s)
			}
		}
	}
}

func TestInvert2(t *testing.T) {
	a := [2][2]float64{{0.95, 0.10}, {0.05, 0.90}} // a confusion matrix
	inv, err := Invert2(a)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			s := a[i][0]*inv[0][j] + a[i][1]*inv[1][j]
			want := 0.0
			if i == j {
				want = 1
			}
			if !approx(s, want) {
				t.Errorf("product[%d][%d] = %v", i, j, s)
			}
		}
	}
	if _, err := Invert2([2][2]float64{{1, 1}, {1, 1}}); err == nil {
		t.Error("singular 2×2 accepted")
	}
}

func TestMatVec(t *testing.T) {
	a := [][]float64{{1, 2}, {3, 4}}
	got, err := MatVec(a, []float64{5, 6})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(got[0], 17) || !approx(got[1], 39) {
		t.Errorf("MatVec = %v", got)
	}
	if _, err := MatVec(a, []float64{1}); err == nil {
		t.Error("dimension mismatch accepted")
	}
}

func TestProjectToSimplex(t *testing.T) {
	got := ProjectToSimplex([]float64{0.5, -0.1, 0.7})
	if got[1] != 0 {
		t.Errorf("negative entry survived: %v", got)
	}
	var sum float64
	for _, x := range got {
		sum += x
	}
	if !approx(sum, 1) {
		t.Errorf("sum = %v", sum)
	}
	zero := ProjectToSimplex([]float64{-1, -2})
	if zero[0] != 0 || zero[1] != 0 {
		t.Errorf("all-negative = %v", zero)
	}
}

// Property: Solve(A, A·x) recovers x for random well-conditioned A.
func TestQuickSolveRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		a := make([][]float64, n)
		for i := range a {
			a[i] = make([]float64, n)
			for j := range a[i] {
				a[i][j] = rng.NormFloat64()
			}
			a[i][i] += float64(n) // diagonal dominance → well-conditioned
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		b, err := MatVec(a, x)
		if err != nil {
			return false
		}
		got, err := Solve(a, b)
		if err != nil {
			return false
		}
		for i := range x {
			if math.Abs(got[i]-x[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(97))}); err != nil {
		t.Error(err)
	}
}
